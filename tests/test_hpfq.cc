// Tests for the H-PFQ framework (src/core/hpfq.h) across node policies:
// equivalence with the flat scheduler at one level, hierarchical bandwidth
// distribution against the fluid H-GPS reference, the paper's delay-bound
// corollaries, and the H-WFQ pathology that motivates WF²Q+.
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hierarchy.h"
#include "core/hpfq.h"
#include "core/wf2qplus.h"
#include "fluid/hgps.h"
#include "harness.h"
#include "stats/wfi_estimator.h"
#include "traffic/leaky_bucket.h"
#include "util/rng.h"

namespace hfq {
namespace {

using core::HWf2qPlus;
using core::HWfq;
using net::FlowId;
using net::Packet;
using testing::Departure;
using testing::TimedArrival;
using testing::packet;
using testing::run_trace;

// ------------------------------------------------------ framework basics

TEST(HPfq, SinglePacketFlowsThrough) {
  HWf2qPlus h(8.0);
  const auto a = h.add_internal(h.root(), 4.0);
  h.add_leaf(a, 4.0, /*flow=*/0);
  const auto deps = run_trace(h, 8.0, {{0.0, packet(0, 1, 7)}});
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].pkt.id, 7u);
  EXPECT_NEAR(deps[0].time, 1.0, 1e-9);
}

TEST(HPfq, BacklogAccounting) {
  HWf2qPlus h(8.0);
  h.add_leaf(h.root(), 8.0, 0);
  EXPECT_EQ(h.backlog_packets(), 0u);
  EXPECT_TRUE(h.enqueue(packet(0, 1, 1), 0.0));
  EXPECT_TRUE(h.enqueue(packet(0, 1, 2), 0.0));
  EXPECT_EQ(h.backlog_packets(), 2u);
  EXPECT_TRUE(h.dequeue(0.0).has_value());
  EXPECT_EQ(h.backlog_packets(), 1u);
}

TEST(HPfq, LeafCapacityDropsTail) {
  HWf2qPlus h(8.0);
  h.add_leaf(h.root(), 8.0, 0, /*capacity_packets=*/2);
  EXPECT_TRUE(h.enqueue(packet(0, 1, 1), 0.0));
  EXPECT_TRUE(h.enqueue(packet(0, 1, 2), 0.0));
  EXPECT_FALSE(h.enqueue(packet(0, 1, 3), 0.0));
  EXPECT_EQ(h.drops(0), 1u);
  EXPECT_EQ(h.backlog_packets(), 2u);
}

TEST(HPfq, MultipleBusyPeriods) {
  HWf2qPlus h(8.0);
  const auto a = h.add_internal(h.root(), 4.0);
  const auto b = h.add_internal(h.root(), 4.0);
  h.add_leaf(a, 4.0, 0);
  h.add_leaf(b, 4.0, 1);
  std::vector<TimedArrival> arr = {
      {0.0, packet(0, 1, 1)},
      {0.0, packet(1, 1, 2)},
      {10.0, packet(1, 1, 3)},
      {20.0, packet(0, 1, 4)},
  };
  const auto deps = run_trace(h, 8.0, arr);
  ASSERT_EQ(deps.size(), 4u);
  EXPECT_NEAR(deps[0].time, 1.0, 1e-9);
  EXPECT_NEAR(deps[1].time, 2.0, 1e-9);
  EXPECT_NEAR(deps[2].time, 11.0, 1e-9);
  EXPECT_NEAR(deps[3].time, 21.0, 1e-9);
}

TEST(HPfq, DeepChainDeliversEverything) {
  // A degenerate 6-deep chain must still behave like a FIFO for one flow.
  HWf2qPlus h(8.0);
  core::NodeId n = h.root();
  for (int depth = 0; depth < 5; ++depth) n = h.add_internal(n, 8.0);
  h.add_leaf(n, 8.0, 0);
  std::vector<TimedArrival> arr;
  for (int i = 0; i < 20; ++i) arr.push_back({0.1 * i, packet(0, 1, i)});
  const auto deps = run_trace(h, 8.0, arr);
  ASSERT_EQ(deps.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(deps[i].pkt.id, i);
    EXPECT_NEAR(deps[i].time, static_cast<double>(i + 1), 1e-9);
  }
}

// ----------------------------------------- one-level ≡ flat equivalence

// A one-level H-WF²Q+ must produce the same schedule as the standalone
// WF²Q+ (single busy period; tag ties avoided by irregular sizes).
TEST(HPfq, OneLevelMatchesFlatWf2qPlus) {
  util::Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    HWf2qPlus h(64.0);
    core::Wf2qPlus flat(64.0);
    // Pairwise coprime-ish rates and small sizes: no two distinct flows can
    // ever produce exactly equal finish tags, so the two implementations'
    // different (both legal) tie-break rules cannot make them diverge.
    const double rates[4] = {7.0, 11.0, 19.0, 27.0};
    for (FlowId f = 0; f < 4; ++f) {
      h.add_leaf(h.root(), rates[f], f);
      flat.add_flow(f, rates[f]);
    }
    std::vector<TimedArrival> arr;
    std::uint64_t id = 0;
    double t = 0.0;
    for (int i = 0; i < 200; ++i) {
      // Dense arrivals: the server never goes idle, so the flat scheduler's
      // busy-period reset never fires and the two systems stay comparable.
      t += rng.uniform(0.0, 0.05);
      arr.push_back({t, packet(static_cast<FlowId>(rng.uniform_int(0, 3)),
                               static_cast<std::uint32_t>(rng.uniform_int(1, 6)),
                               id++)});
    }
    const auto d1 = run_trace(h, 64.0, arr);
    const auto d2 = run_trace(flat, 64.0, arr);
    ASSERT_EQ(d1.size(), d2.size());
    for (std::size_t i = 0; i < d1.size(); ++i) {
      EXPECT_EQ(d1[i].pkt.id, d2[i].pkt.id) << "diverged at departure " << i;
      EXPECT_NEAR(d1[i].time, d2[i].time, 1e-9);
    }
  }
}

// -------------------------------------- hierarchical bandwidth distribution

// All leaves continuously backlogged: every leaf's service must track the
// fluid H-GPS service within a few packets at all times (H-WF²Q+ fairness).
TEST(HPfq, TracksFluidHgpsOnTwoLevelTree) {
  core::Hierarchy spec(80.0);
  const auto a = spec.add_class(0, "A", 60.0);
  const auto b = spec.add_class(0, "B", 20.0);
  spec.add_session(a, "a1", 40.0, /*flow=*/0);
  spec.add_session(a, "a2", 20.0, /*flow=*/1);
  spec.add_session(b, "b1", 20.0, /*flow=*/2);

  auto h = spec.build_packet<core::Wf2qPlusPolicy>();
  auto fluid = spec.build_fluid();

  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 300; ++k) {
    for (FlowId f = 0; f < 3; ++f) arr.push_back({0.0, packet(f, 10, id++)});
  }
  // Mirror arrivals into the fluid system.
  for (const auto& ta : arr) {
    fluid.arrive(ta.time, spec.index_of(ta.pkt.flow == 0   ? "a1"
                                        : ta.pkt.flow == 1 ? "a2"
                                                           : "b1"),
                 ta.pkt.size_bits());
  }

  std::map<FlowId, double> served;
  sim::Simulator sim;
  sim::Link link(sim, *h, 80.0);
  const double lmax_bits = 80.0;
  link.set_delivery([&](const net::Packet& p, net::Time t) {
    served[p.flow] += p.size_bits();
    fluid.advance_to(t);
    const std::uint32_t leaf[3] = {spec.index_of("a1"), spec.index_of("a2"),
                                   spec.index_of("b1")};
    for (FlowId f = 0; f < 3; ++f) {
      // Two levels of WF²Q+ nodes: discrepancy bounded by a small number of
      // maximum packets (one per level plus the packet in service).
      EXPECT_NEAR(served[f], fluid.work(leaf[f]), 3.0 * lmax_bits)
          << "flow " << f << " at t=" << t;
    }
  });
  for (const auto& ta : arr) {
    sim.at(ta.time, [&link, pkt = ta.pkt] { link.submit(pkt); });
  }
  sim.run();
  // Sanity: everything delivered.
  EXPECT_NEAR(served[0] + served[1] + served[2], 300 * 3 * 80.0, 1e-6);
}

// Fig. 1 semantics: when a session goes idle, its bandwidth goes to the
// sibling subtree first.
TEST(HPfq, ExcessBandwidthStaysInSubtree) {
  core::Hierarchy spec(80.0);
  const auto a = spec.add_class(0, "A", 40.0);
  const auto b = spec.add_class(0, "B", 40.0);
  spec.add_session(a, "a1", 32.0, 0);
  spec.add_session(a, "a2", 8.0, 1);
  spec.add_session(b, "b1", 40.0, 2);

  auto h = spec.build_packet<core::Wf2qPlusPolicy>();
  // a1 active only during [0, 12.5]: 5 packets of 80 bits at 32 bps; a2 and
  // b1 stay backlogged throughout.
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 5; ++k) arr.push_back({0.0, packet(0, 10, id++)});
  for (int k = 0; k < 2000; ++k) {
    arr.push_back({0.0, packet(1, 10, id++)});
    arr.push_back({0.0, packet(2, 10, id++)});
  }
  std::map<FlowId, double> bits_before_20, bits_before_40;
  sim::Simulator sim;
  sim::Link link(sim, *h, 80.0);
  link.set_delivery([&](const net::Packet& p, net::Time t) {
    if (t <= 20.0) bits_before_20[p.flow] += p.size_bits();
    if (t <= 40.0) bits_before_40[p.flow] += p.size_bits();
  });
  for (const auto& ta : arr) {
    sim.at(ta.time, [&link, pkt = ta.pkt] { link.submit(pkt); });
  }
  sim.run_until(45.0);
  // While a1 is active (it has 50*80 = 4000 bits = 50 pkts at 32 bps →
  // active for [0, 12.5] roughly): a1 32, a2 8, b1 40 bps. After a1 idles:
  // a2 inherits all of A → a2 40, b1 40.
  // At t=40: a2 ≈ 8*12.5 + 40*27.5 = 1200; b1 ≈ 40*40 = 1600.
  EXPECT_NEAR(bits_before_40[1], 1200.0, 200.0);
  EXPECT_NEAR(bits_before_40[2], 1600.0, 200.0);
  // b1 must NOT have gained from a1's departure.
  EXPECT_LT(bits_before_40[2], 1700.0);
}

// --------------------------------------------------- delay-bound corollary

// Corollary 2 (conservative form): a (sigma, r_i)-constrained session in an
// H-WF²Q+ hierarchy has delay at most sigma/r_i + sum over ancestor servers
// of Lmax/r_server (+ one link packet time of measurement slack).
TEST(HPfq, Corollary2DelayBoundHolds) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 5; ++trial) {
    // link 80 bps; session under test: rate 8 at depth 3.
    core::Hierarchy spec(80.0);
    const auto l1 = spec.add_class(0, "L1", 40.0);
    const auto l2 = spec.add_class(l1, "L2", 16.0);
    spec.add_session(l2, "rt", 8.0, 0);
    spec.add_session(l2, "x2", 8.0, 1);
    const auto l1b = spec.add_class(l1, "L2b", 24.0);
    spec.add_session(l1b, "x1", 24.0, 2);
    spec.add_session(0, "bg", 40.0, 3);

    auto h = spec.build_packet<core::Wf2qPlusPolicy>();
    sim::Simulator sim;
    sim::Link link(sim, *h, 80.0);

    const std::uint32_t bytes = 10;  // 80 bits = Lmax
    const double lmax = 80.0;
    const double sigma = 3 * lmax;  // bucket depth: 3 packets
    const double r_rt = 8.0;
    // Ancestor servers of "rt": L2 (16), L1 (40), root (80).
    const double bound = sigma / r_rt + lmax / 16.0 + lmax / 40.0 +
                         lmax / 80.0 + lmax / 80.0 /*tx slack*/;

    double max_delay = 0.0;
    link.set_delivery([&](const net::Packet& p, net::Time t) {
      if (p.flow == 0) max_delay = std::max(max_delay, t - p.arrival);
    });

    // Leaky-bucket constrained rt traffic: bursts shaped by (sigma, r_rt).
    traffic::LeakyBucketShaper shaper(
        sim, [&link](net::Packet p) { return link.submit(p); }, sigma, r_rt);
    std::uint64_t id = 0;
    double t = 0.0;
    for (int i = 0; i < 150; ++i) {
      t += rng.uniform(0.0, 25.0);
      const int burst = static_cast<int>(rng.uniform_int(1, 4));
      for (int k = 0; k < burst; ++k) {
        sim.at(t, [&shaper, pkt = packet(0, bytes, id++)]() mutable {
          shaper.offer(pkt);
        });
      }
    }
    // Adversarial cross traffic: everyone else greedy from t=0.
    std::vector<TimedArrival> cross;
    for (int k = 0; k < 6000; ++k) {
      cross.push_back({0.0, packet(1, bytes, 1000000 + id++)});
      cross.push_back({0.0, packet(2, bytes, 1000000 + id++)});
      cross.push_back({0.0, packet(3, bytes, 1000000 + id++)});
    }
    for (const auto& ta : cross) {
      sim.at(ta.time, [&link, pkt = ta.pkt] { link.submit(pkt); });
    }
    sim.run();
    EXPECT_LE(max_delay, bound + 1e-6) << "trial " << trial;
    EXPECT_GT(max_delay, 0.0);
  }
}

// ------------------------------------------------- the H-WFQ pathology

// Section 3.1: inside a hierarchy, a burst admitted by a large-WFI node
// (WFQ) delays a sibling real-time packet by many packet times; WF²Q+
// nodes bound the damage to ~one packet per level.
template <typename Policy>
double rt_delay_after_burst() {
  // root{A:0.5{BE:0.2, RT:0.3}, B1..B10: 0.05 each} at link 8 bps, unit
  // 1-byte packets (1 s each).
  core::Hierarchy spec(8.0);
  const auto a = spec.add_class(0, "A", 4.0);
  spec.add_session(a, "BE", 1.6, /*flow=*/0);
  spec.add_session(a, "RT", 2.4, /*flow=*/1);
  for (int j = 0; j < 10; ++j) {
    spec.add_session(0, "B" + std::to_string(j), 0.4,
                     static_cast<FlowId>(2 + j));
  }
  auto h = spec.build_packet<Policy>();
  sim::Simulator sim;
  sim::Link link(sim, *h, 8.0);
  double rt_delay = -1.0;
  link.set_delivery([&](const net::Packet& p, net::Time t) {
    if (p.flow == 1) rt_delay = t - p.arrival;
  });
  // BE bursts 11 packets at t=0; every B-j sends one packet at t=0. The RT
  // packet arrives at t=10: under H-WFQ the root has by then served class
  // A's whole burst ahead of its fluid schedule, so A is "in debt" and the
  // RT packet waits behind all ten B-j packets; under H-WF²Q+ class A was
  // never allowed to run ahead, so the RT packet goes out within a few
  // packet times.
  sim.at(0.0, [&] {
    for (int k = 0; k < 11; ++k) link.submit(packet(0, 1, k));
    for (int j = 0; j < 10; ++j) {
      link.submit(packet(static_cast<FlowId>(2 + j), 1, 100 + j));
    }
  });
  sim.at(10.0, [&] { link.submit(packet(1, 1, 999)); });
  sim.run();
  return rt_delay;
}

TEST(HPfq, WfqNodesDelayRealTimeBurstily) {
  const double wfq_delay = rt_delay_after_burst<core::GpsSffPolicy>();
  const double wf2qp_delay = rt_delay_after_burst<core::Wf2qPlusPolicy>();
  ASSERT_GT(wfq_delay, 0.0);
  ASSERT_GT(wf2qp_delay, 0.0);
  // Under H-WFQ the RT packet waits while the siblings catch up on the BE
  // burst; under H-WF²Q+ it is served within a few packet times.
  EXPECT_GE(wfq_delay, 2.0 * wf2qp_delay);
  EXPECT_LE(wf2qp_delay, 4.0);
}

// ------------------------------------------------- WFI composition (Thm 1)

// Measured hierarchical B-WFI of a continuously backlogged session under
// H-WF²Q+ stays within the Theorem 1 composition of per-node indices.
TEST(HPfq, HierarchicalBwfiWithinTheorem1Bound) {
  core::Hierarchy spec(80.0);
  const auto a = spec.add_class(0, "A", 40.0);
  spec.add_session(a, "s0", 20.0, 0);
  spec.add_session(a, "s1", 20.0, 1);
  const auto b = spec.add_class(0, "B", 40.0);
  spec.add_session(b, "s2", 40.0, 2);

  auto h = spec.build_packet<core::Wf2qPlusPolicy>();
  sim::Simulator sim;
  sim::Link link(sim, *h, 80.0);

  const double lmax = 80.0;  // 10-byte packets
  // Session 0: phi_i/phi_root = 20/80. Theorem 1 with per-node WFI = Lmax
  // (+ measurement granularity of one packet):
  const double bound =
      (20.0 / 40.0) * lmax + (20.0 / 80.0) * lmax + lmax;

  stats::WfiEstimator wfi(20.0 / 80.0);
  wfi.backlog_start();
  link.set_delivery([&](const net::Packet& p, net::Time) {
    wfi.on_server_departure(p.size_bits(),
                            p.flow == 0 ? p.size_bits() : 0.0);
  });
  std::uint64_t id = 0;
  sim.at(0.0, [&] {
    for (int k = 0; k < 1000; ++k) {
      link.submit(packet(0, 10, id++));
      link.submit(packet(1, 10, id++));
      link.submit(packet(2, 10, id++));
    }
  });
  sim.run_until(80.0);  // still backlogged at the horizon
  EXPECT_LE(wfi.bwfi_bits(), bound + 1e-6);
  EXPECT_GT(wfi.bwfi_bits(), 0.0);
}

}  // namespace
}  // namespace hfq
