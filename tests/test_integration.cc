// Integration tests: scaled-down versions of the paper's experiments run
// end-to-end through sources → link → hierarchy → measurement, guarding the
// shapes the benchmark binaries report. Also: virtual-time rebasing
// transparency and multi-hop delay composition.
#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/hierarchy.h"
#include "core/hpfq.h"
#include "harness.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "stats/delay_recorder.h"
#include "stats/fairness.h"
#include "stats/rate_estimator.h"
#include "traffic/cbr.h"
#include "traffic/onoff.h"
#include "traffic/tcp.h"
#include "util/rng.h"

namespace hfq {
namespace {

using net::FlowId;
using net::Packet;
using testing::packet;

// ------------------------------------- §3.1 pathology, three levels deep

// A deterministic probe-after-burst at depth three: the best-effort burst
// runs its whole subtree ahead under H-WFQ, so the probe pays for the
// catch-up of BOTH ancestor levels' siblings; H-WF²Q+ serves it within a
// few packet times.
template <typename Policy>
double deep_probe_delay() {
  core::Hierarchy spec(8.0);  // unit packets: 1 byte = 1 s at 8 bps
  const auto l1 = spec.add_class(0, "L1", 4.0);
  const auto l2 = spec.add_class(l1, "L2", 2.0);
  spec.add_session(l2, "be", 0.5, 0);
  spec.add_session(l2, "rt", 1.5, 1);
  spec.add_session(l1, "s1", 2.0, 2);    // sibling at level 1
  for (int j = 0; j < 12; ++j) {         // siblings at the root
    spec.add_session(0, "r" + std::to_string(j), 1.0 / 3.0,
                     static_cast<FlowId>(3 + j));
  }
  auto h = spec.build_packet<Policy>();
  sim::Simulator sim;
  sim::Link link(sim, *h, 8.0);
  double probe_delay = -1.0;
  link.set_delivery([&](const Packet& p, net::Time t) {
    if (p.flow == 1) probe_delay = t - p.arrival;
  });
  sim.at(0.0, [&] {
    for (int k = 0; k < 40; ++k) link.submit(packet(0, 1, k));  // BE burst
    for (int k = 0; k < 20; ++k) link.submit(packet(2, 1, 100 + k));
    for (int j = 0; j < 12; ++j) {
      for (int k = 0; k < 2; ++k) {
        link.submit(packet(static_cast<FlowId>(3 + j), 1, 200 + 2 * j + k));
      }
    }
  });
  sim.at(12.0, [&] { link.submit(packet(1, 1, 999)); });  // RT probe
  sim.run();
  return probe_delay;
}

TEST(Integration, DeepHierarchyProbeDelayWfqVsWf2qPlus) {
  const double wfq = deep_probe_delay<core::GpsSffPolicy>();
  const double wf2qp = deep_probe_delay<core::Wf2qPlusPolicy>();
  ASSERT_GT(wfq, 0.0);
  ASSERT_GT(wf2qp, 0.0);
  EXPECT_GT(wfq, 1.5 * wf2qp);
}

// ------------------------------------------ scaled Figure 9 shape guard

TEST(Integration, TcpBandwidthTracksHierarchyShares) {
  core::Hierarchy spec(1e6);
  const auto a = spec.add_class(0, "A", 0.75e6);
  spec.add_session(a, "t0", 0.5e6, 0, 32);
  spec.add_session(a, "t1", 0.25e6, 1, 32);
  spec.add_session(0, "t2", 0.25e6, 2, 32);
  auto h = spec.build_packet<core::Wf2qPlusPolicy>();
  sim::Simulator sim;
  sim::Link link(sim, *h, 1e6);
  traffic::TcpConfig cfg;
  cfg.one_way_delay_s = 0.01;
  std::vector<std::unique_ptr<traffic::TcpSource>> tcps;
  for (FlowId f = 0; f < 3; ++f) {
    tcps.push_back(std::make_unique<traffic::TcpSource>(
        sim, [&link](Packet p) { return link.submit(p); }, f, 500, cfg));
  }
  std::map<FlowId, double> bits;
  link.set_delivery([&](const Packet& p, net::Time) {
    bits[p.flow] += p.size_bits();
    tcps[p.flow]->on_packet_delivered(p);
  });
  for (auto& t : tcps) t->start(0.0);
  sim.run_until(30.0);
  const double total = bits[0] + bits[1] + bits[2];
  EXPECT_GT(total, 0.85e6 * 30.0);  // work conserving under TCP
  EXPECT_NEAR(bits[0] / total, 0.50, 0.06);
  EXPECT_NEAR(bits[1] / total, 0.25, 0.06);
  EXPECT_NEAR(bits[2] / total, 0.25, 0.06);
  // Weighted fairness: Jain index of normalized shares near 1.
  const double norm[3] = {bits[0] / 0.5, bits[1] / 0.25, bits[2] / 0.25};
  EXPECT_GT(stats::jain_index(std::span<const double>(norm, 3)), 0.98);
}

// --------------------------------------------------- rebasing transparency

// Two identical one-level H-WF²Q+ servers, one forced to rebase its
// virtual clock thousands of times: schedules must be bit-identical.
TEST(Integration, VirtualTimeRebasingIsScheduleTransparent) {
  auto run = [](bool force_rebase) {
    core::HWf2qPlus h(8000.0);
    h.add_leaf(h.root(), 3000.0, 0);
    h.add_leaf(h.root(), 5000.0, 1);
    if (force_rebase) {
      h.mutable_policy(h.root()).set_rebase_threshold(0.5);
    }
    sim::Simulator sim;
    sim::Link link(sim, h, 8000.0);
    std::vector<std::pair<double, std::uint64_t>> deps;
    link.set_delivery([&](const Packet& p, net::Time t) {
      deps.emplace_back(t, p.id);
    });
    util::Rng rng(21);
    std::uint64_t id = 0;
    double t = 0.0;
    for (int i = 0; i < 2000; ++i) {
      t += rng.uniform(0.0, 0.2);
      const auto f = static_cast<FlowId>(rng.uniform_int(0, 1));
      const auto bytes = static_cast<std::uint32_t>(rng.uniform_int(10, 125));
      sim.at(t, [&link, p = packet(f, bytes, id++)] {
        Packet q = p;
        link.submit(q);
      });
    }
    sim.run();
    const auto rebases = h.policy_of(h.root()).rebase_count();
    return std::make_pair(deps, rebases);
  };
  const auto [base, rb0] = run(false);
  const auto [rebased, rb1] = run(true);
  EXPECT_EQ(rb0, 0u);
  EXPECT_GT(rb1, 50u);  // the knob actually exercised the rebase path
  ASSERT_EQ(base.size(), rebased.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].second, rebased[i].second) << "departure " << i;
    EXPECT_NEAR(base[i].first, rebased[i].first, 1e-9);
  }
}

// ------------------------------------------------------ multi-hop delays

// Three H-WF²Q+ hops in series: the end-to-end delay of a shaped session is
// bounded by the sum of the per-hop Corollary 2 bounds.
TEST(Integration, MultiHopDelayComposition) {
  constexpr double kRate = 8000.0;
  constexpr double kLmax = 1000.0;
  sim::Simulator sim;

  struct Hop {
    std::unique_ptr<core::HWf2qPlus> sched;
    std::unique_ptr<sim::Link> link;
  };
  std::vector<Hop> hops;
  for (int i = 0; i < 3; ++i) {
    auto s = std::make_unique<core::HWf2qPlus>(kRate);
    s->add_leaf(s->root(), 2000.0, 0);  // probe
    s->add_leaf(s->root(), 6000.0, static_cast<FlowId>(1 + i));  // local cross
    auto l = std::make_unique<sim::Link>(sim, *s, kRate);
    hops.push_back(Hop{std::move(s), std::move(l)});
  }
  // Chain: probe departures of hop i feed hop i+1; cross traffic is local.
  double max_e2e = 0.0;
  std::map<std::uint64_t, double> entry_time;
  for (int i = 0; i < 3; ++i) {
    const bool last = i == 2;
    hops[i].link->set_delivery(
        [&, i, last](const Packet& p, net::Time t) {
          if (p.flow != 0) return;
          if (last) {
            max_e2e = std::max(max_e2e, t - entry_time[p.id]);
          } else {
            hops[i + 1].link->submit(p);
          }
        });
  }
  // Probe: leaky-bucket-conformant CBR at its guaranteed rate (sigma = L).
  util::Rng rng(5);
  std::uint64_t id = 0;
  for (int k = 0; k < 300; ++k) {
    const double t = 0.5 * k + rng.uniform(0.0, 0.2);
    sim.at(t, [&, t, pid = id] {
      Packet p = packet(0, 125, pid);
      entry_time[pid] = t;
      hops[0].link->submit(p);
    });
    ++id;
  }
  // Greedy local cross traffic at each hop.
  for (int i = 0; i < 3; ++i) {
    sim.at(0.0, [&, i] {
      for (int k = 0; k < 2000; ++k) {
        hops[i].link->submit(
            packet(static_cast<FlowId>(1 + i), 125, 1000000 + 10000 * i + k));
      }
    });
  }
  sim.run();
  ASSERT_GT(max_e2e, 0.0);
  // Per hop: sigma/r + Lmax/r_link + tx time; sigma here ~ one packet.
  const double per_hop = kLmax / 2000.0 + kLmax / kRate + kLmax / kRate;
  EXPECT_LE(max_e2e, 3.0 * per_hop + 1e-9);
}

}  // namespace
}  // namespace hfq
