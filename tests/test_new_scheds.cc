// Behaviour specific to the extension baselines: VirtualClock's memory of
// past excess, WRR's size-blindness, StochasticFq's hashing and
// perturbation, and ApproxWfq's WFQ-like burst pathology.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "harness.h"
#include "sched/approx_wfq.h"
#include "sched/stochastic_fq.h"
#include "sched/virtual_clock.h"
#include "sched/wrr.h"

namespace hfq::sched {
namespace {

using net::FlowId;
using testing::TimedArrival;
using testing::packet;
using testing::run_trace;

// ---------------------------------------------------------- VirtualClock

// The famous Virtual Clock pathology: a flow that used idle bandwidth is
// punished afterwards — its auxiliary clock ran ahead of real time, so a
// newly active competitor locks it out completely until the clock catches
// up. (GPS-family schedulers deliberately do NOT do this.)
TEST(VirtualClock, PunishesPastExcessUsage) {
  VirtualClock s;
  s.add_flow(0, 4000.0);
  s.add_flow(1, 4000.0);
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  // Flow 0 alone for 10 s at full link rate (8 pkt/s of 125 B): its clock
  // advances 2x real time (rate share 0.5).
  for (int k = 0; k < 80; ++k) arr.push_back({0.125 * k, packet(0, 125, id++)});
  // At t=10 flow 1 becomes active; both offer packets continuously.
  for (int k = 0; k < 40; ++k) {
    arr.push_back({10.0 + 0.125 * k, packet(0, 125, id++)});
    arr.push_back({10.0 + 0.125 * k, packet(1, 125, id++)});
  }
  const auto deps = run_trace(s, 8000.0, arr);
  // Count flow 0 service in the window right after flow 1 arrives: Virtual
  // Clock starves it (clock at ~20 vs flow 1 starting at ~10).
  int flow0_in_window = 0;
  for (const auto& d : deps) {
    if (d.time > 10.0 && d.time <= 13.0 && d.pkt.flow == 0) ++flow0_in_window;
  }
  EXPECT_LE(flow0_in_window, 2);  // near-total lockout
}

TEST(VirtualClock, FairWhenSimultaneouslyBacklogged) {
  VirtualClock s;
  s.add_flow(0, 6000.0);
  s.add_flow(1, 2000.0);
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 200; ++k) {
    arr.push_back({0.0, packet(0, 125, id++)});
    arr.push_back({0.0, packet(1, 125, id++)});
  }
  const auto deps = run_trace(s, 8000.0, arr);
  std::map<FlowId, int> by25;
  for (const auto& d : deps) {
    if (d.time <= 25.0) by25[d.pkt.flow]++;
  }
  // 8 pkt/s total, split 3:1.
  EXPECT_NEAR(by25[0], 150, 8);
  EXPECT_NEAR(by25[1], 50, 8);
}

// ------------------------------------------------------------------ WRR

TEST(Wrr, RoundRobinByPacketCountIgnoresSizes) {
  Wrr s(/*base_rate=*/1000.0);
  s.add_flow(0, 1000.0);  // weight 1
  s.add_flow(1, 1000.0);  // weight 1
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 50; ++k) {
    arr.push_back({0.0, packet(0, 200, id++)});  // big packets
    arr.push_back({0.0, packet(1, 50, id++)});   // small packets
  }
  const auto deps = run_trace(s, 8000.0, arr);
  // Equal packet counts per round → flow 0 gets 4x the bandwidth: the
  // size-blindness DRR exists to fix.
  double bits0 = 0.0, bits1 = 0.0;
  for (const auto& d : deps) {
    if (d.time <= 20.0) {
      (d.pkt.flow == 0 ? bits0 : bits1) += d.pkt.size_bits();
    }
  }
  EXPECT_GT(bits0, 3.0 * bits1);
}

TEST(Wrr, WeightsScaleWithRates) {
  Wrr s(1000.0);
  s.add_flow(0, 3000.0);  // weight 3
  s.add_flow(1, 1000.0);  // weight 1
  EXPECT_DOUBLE_EQ(s.weight_of(0), 3.0);
  EXPECT_DOUBLE_EQ(s.weight_of(1), 1.0);
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 120; ++k) {
    arr.push_back({0.0, packet(0, 125, id++)});
    arr.push_back({0.0, packet(1, 125, id++)});
  }
  const auto deps = run_trace(s, 8000.0, arr);
  std::map<FlowId, int> count;
  for (const auto& d : deps) {
    if (d.time <= 15.0) count[d.pkt.flow]++;
  }
  EXPECT_NEAR(count[0], 90, 6);
  EXPECT_NEAR(count[1], 30, 6);
}

// ----------------------------------------------------------- StochasticFq

TEST(StochasticFq, SeparateBucketsShareEqually) {
  // Pick flow ids that land in different buckets.
  StochasticFq s(64);
  FlowId a = 0, b = 1;
  while (s.bucket_of(a) == s.bucket_of(b)) ++b;
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 100; ++k) {
    arr.push_back({0.0, packet(a, 125, id++)});
    arr.push_back({0.0, packet(b, 125, id++)});
  }
  const auto deps = run_trace(s, 8000.0, arr);
  std::map<FlowId, int> count;
  for (const auto& d : deps) {
    if (d.time <= 12.5) count[d.pkt.flow]++;
  }
  EXPECT_NEAR(count[a], 50, 2);
  EXPECT_NEAR(count[b], 50, 2);
}

TEST(StochasticFq, CollidingFlowsShareOneBucket) {
  StochasticFq s(4);  // few buckets → collisions easy to find
  FlowId a = 0;
  FlowId b = 1;
  while (s.bucket_of(b) != s.bucket_of(a)) ++b;
  FlowId c = b + 1;
  while (s.bucket_of(c) == s.bucket_of(a)) ++c;
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 90; ++k) {
    arr.push_back({0.0, packet(a, 125, id++)});
    arr.push_back({0.0, packet(b, 125, id++)});
    arr.push_back({0.0, packet(c, 125, id++)});
  }
  const auto deps = run_trace(s, 8000.0, arr);
  std::map<FlowId, int> count;
  for (const auto& d : deps) {
    if (d.time <= 15.0) count[d.pkt.flow]++;
  }
  // a and b split one bucket's half; c alone gets the other half.
  EXPECT_NEAR(count[a] + count[b], count[c], 6);
}

TEST(StochasticFq, PerturbChangesMapping) {
  StochasticFq s(1024);
  std::map<std::size_t, int> before;
  for (FlowId f = 0; f < 64; ++f) before[s.bucket_of(f)]++;
  s.perturb(0x1234567890abcdefULL);
  int moved = 0;
  std::map<std::size_t, int> after;
  for (FlowId f = 0; f < 64; ++f) after[s.bucket_of(f)]++;
  // The mapping must actually change (probability of identity ~ 0).
  if (before != after) ++moved;
  EXPECT_EQ(moved, 1);
}

TEST(StochasticFq, DropsWhenBucketFull) {
  StochasticFq s(8, /*per_bucket_capacity=*/2);
  sim::Simulator sim;
  sim::Link link(sim, s, 8000.0);
  link.set_delivery([](const net::Packet&, net::Time) {});
  sim.at(0.0, [&] {
    for (int i = 0; i < 6; ++i) link.submit(packet(0, 125, i));
  });
  sim.run();
  EXPECT_EQ(s.drops(), 3u);  // 1 in service + 2 queued accepted
}

// ------------------------------------------------------------- ApproxWfq

// Removing only the eligibility test reintroduces the Fig. 2 burst: the
// heavy session runs ahead exactly like WFQ.
TEST(ApproxWfq, BurstsLikeWfqOnFig2Pattern) {
  ApproxWfq s(8.0);
  s.add_flow(0, 4.0);
  for (FlowId j = 1; j <= 10; ++j) s.add_flow(j, 0.4);
  const auto deps = run_trace(s, 8.0, testing::fig2_arrivals());
  ASSERT_EQ(deps.size(), 21u);
  // First ten departures all belong to session 0 — the WFQ signature.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(deps[i].pkt.flow, 0u) << i;
}

}  // namespace
}  // namespace hfq::sched
