// Tests for the flight-recorder observability layer (src/obs/): ring
// wraparound, thread-local installation (including ordering isolation under
// run_shards), the exporters (Chrome JSON escaping, CSV round trip),
// filtering and diffing, and the compile gate on the scheduler hooks.
//
// Everything except the gated-hook tests drives FlightRecorder::record()
// directly, which is compiled in every build type — only the scheduler-side
// HFQ_TRACE_EVENT hooks depend on -DHFQ_TRACE=ON.
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/wf2qplus.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "runner/shard.h"
#include "runner/thread_pool.h"
#include "sim/link.h"
#include "sim/simulator.h"

namespace hfq::obs {
namespace {

using units::VirtualTime;
using units::WallTime;

Event make_event(std::uint32_t flow, double t) {
  Event e;
  e.kind = EventKind::kEnqueue;
  e.node = kFlatNode;
  e.flow = flow;
  e.wall = WallTime{t};
  return e;
}

TEST(FlightRecorder, RecordsInOrder) {
  FlightRecorder rec(8);
  for (std::uint32_t i = 0; i < 5; ++i) rec.record(make_event(i, i * 1.0));
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.overwritten(), 0u);
  EXPECT_EQ(rec.total_recorded(), 5u);
  const std::vector<Event> events = rec.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].flow, i);
  }
}

TEST(FlightRecorder, RingWraparoundKeepsNewest) {
  FlightRecorder rec(4);
  for (std::uint32_t i = 0; i < 10; ++i) rec.record(make_event(i, i * 1.0));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.overwritten(), 6u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  const std::vector<Event> events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest, and exactly the last four records.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
    EXPECT_EQ(events[i].flow, 6u + i);
  }
}

TEST(FlightRecorder, LastReturnsNewestSuffix) {
  FlightRecorder rec(8);
  for (std::uint32_t i = 0; i < 6; ++i) rec.record(make_event(i, 0.0));
  const std::vector<Event> tail = rec.last(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].flow, 4u);
  EXPECT_EQ(tail[1].flow, 5u);
  EXPECT_EQ(rec.last(100).size(), 6u);
}

TEST(FlightRecorder, ClearResets) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) rec.record(make_event(0, 0.0));
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.overwritten(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  rec.record(make_event(7, 0.0));
  EXPECT_EQ(rec.snapshot().at(0).seq, 0u);
}

TEST(FlightRecorder, ZeroCapacityClampsToOne) {
  FlightRecorder rec(0);
  EXPECT_EQ(rec.capacity(), 1u);
  rec.record(make_event(1, 0.0));
  rec.record(make_event(2, 0.0));
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.snapshot().at(0).flow, 2u);
}

TEST(RecordScope, InstallsAndRestores) {
  EXPECT_EQ(current(), nullptr);
  FlightRecorder outer(8);
  {
    RecordScope a(outer);
    EXPECT_EQ(current(), &outer);
    FlightRecorder inner(8);
    {
      RecordScope b(inner);
      EXPECT_EQ(current(), &inner);
    }
    EXPECT_EQ(current(), &outer);
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(RecordScope, LastEventsTextEmptyWithoutRecorder) {
  EXPECT_EQ(last_events_text(10), "");
  FlightRecorder rec(8);
  RecordScope scope(rec);
  EXPECT_EQ(last_events_text(10), "");  // installed but nothing recorded
  rec.record(make_event(3, 1.0));
  const std::string text = last_events_text(10);
  EXPECT_NE(text.find("enqueue"), std::string::npos);
  EXPECT_NE(text.find("flow=3"), std::string::npos);
}

// Each run_shards worker installs its own thread-local recorder; events from
// concurrent shards must land in their own rings, in their own order, with
// per-recorder contiguous sequence numbers — regardless of the jobs count.
TEST(RecordScope, ShardLocalRecordingIsIsolated) {
  constexpr std::size_t kShards = 8;
  constexpr std::uint32_t kEventsPerShard = 100;
  std::vector<std::vector<Event>> captured(kShards);
  runner::ThreadPool pool(4);
  const auto shards = runner::run_shards(
      1, kShards, pool, [&](runner::ShardRun& shard) {
        FlightRecorder rec(256);
        RecordScope scope(rec);
        for (std::uint32_t i = 0; i < kEventsPerShard; ++i) {
          // Record through the thread-local slot, as instrumented code does.
          current()->record(
              make_event(static_cast<std::uint32_t>(shard.index), i * 1.0));
        }
        captured[shard.index] = rec.snapshot();
      });
  for (const auto& shard : shards) EXPECT_TRUE(shard.ok());
  for (std::size_t s = 0; s < kShards; ++s) {
    ASSERT_EQ(captured[s].size(), kEventsPerShard);
    for (std::uint32_t i = 0; i < kEventsPerShard; ++i) {
      EXPECT_EQ(captured[s][i].seq, i);  // contiguous: no cross-shard bleed
      EXPECT_EQ(captured[s][i].flow, s);
      EXPECT_DOUBLE_EQ(captured[s][i].wall.seconds(), i * 1.0);
    }
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(Export, JsonEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Export, ChromeJsonEscapesNodeNames) {
  FlightRecorder rec(8);
  rec.enqueue(0, 1, 42, WallTime{0.5}, VirtualTime{0.25}, 8.0, 1.0);
  ExportOptions opt;
  opt.node_names[0] = "leaf \"A\\B\"\nnewline";
  opt.process_name = "proc \"x\"";
  std::ostringstream os;
  write_chrome_json(os, rec.snapshot(), opt);
  const std::string json = os.str();
  EXPECT_NE(json.find("leaf \\\"A\\\\B\\\"\\nnewline"), std::string::npos);
  EXPECT_NE(json.find("proc \\\"x\\\""), std::string::npos);
  // The raw (unescaped) name must not appear.
  EXPECT_EQ(json.find("leaf \"A\\B\"\nnewline"), std::string::npos);
}

TEST(Export, ChromeJsonHasTrackPerNode) {
  FlightRecorder rec(16);
  rec.enqueue(0, 1, 1, WallTime{0.0}, VirtualTime{}, 8.0, 1.0);
  rec.enqueue(3, 1, 2, WallTime{0.0}, VirtualTime{}, 8.0, 2.0);
  rec.span_end("link.enqueue", WallTime{0.0}, 1200.0);
  std::ostringstream os;
  write_chrome_json(os, rec.snapshot(), {});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"node 3\""), std::string::npos);
  // Spans become complete slices with the measured duration in µs.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.2"), std::string::npos);
}

TEST(Export, CsvRoundTrip) {
  FlightRecorder rec(32);
  rec.enqueue(0, 1, 42, WallTime{0.5}, VirtualTime{0.25}, 64.0, 3.0);
  rec.vtime_update(0, WallTime{1.0}, VirtualTime{0.25}, VirtualTime{0.5});
  rec.eligibility_flip(0, 2, WallTime{1.5}, VirtualTime{0.5},
                       VirtualTime{0.4}, VirtualTime{0.9}, true);
  rec.eligset_op(1, 2, WallTime{2.0}, "select", VirtualTime{0.9});
  rec.drop(0, 3, 99, WallTime{2.5}, 128.0);
  rec.busy_end(0, WallTime{3.0}, VirtualTime{1.5}, 4.0);
  const std::vector<Event> written = rec.snapshot();

  std::stringstream ss;
  write_csv(ss, written);
  const std::vector<Event> back = read_csv(ss);
  ASSERT_EQ(back.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(back[i].seq, written[i].seq);
    EXPECT_EQ(back[i].kind, written[i].kind);
    EXPECT_EQ(back[i].node, written[i].node);
    EXPECT_EQ(back[i].flow, written[i].flow);
    EXPECT_EQ(back[i].packet, written[i].packet);
    EXPECT_DOUBLE_EQ(back[i].wall.seconds(), written[i].wall.seconds());
    EXPECT_DOUBLE_EQ(back[i].vtime.v(), written[i].vtime.v());
    EXPECT_DOUBLE_EQ(back[i].a, written[i].a);
    EXPECT_DOUBLE_EQ(back[i].b, written[i].b);
    EXPECT_STREQ(back[i].detail, written[i].detail);
  }
  // Diff agrees they are identical.
  EXPECT_TRUE(diff_events(written, back).empty());
}

TEST(Export, ReadCsvRejectsMalformed) {
  {
    std::stringstream ss("");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("not,a,trace,header\n");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("seq,kind,node,flow,packet,wall_s,vtime,a,b,detail\n"
                         "0,enqueue,0,1\n");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("seq,kind,node,flow,packet,wall_s,vtime,a,b,detail\n"
                         "0,bogus_kind,0,1,2,0.5,0.25,8,1,\n");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
  {
    // Non-finite wall timestamp.
    std::stringstream ss("seq,kind,node,flow,packet,wall_s,vtime,a,b,detail\n"
                         "0,enqueue,0,1,2,nan,0.25,8,1,\n");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
}

TEST(Export, FilterMatchesFields) {
  FlightRecorder rec(32);
  rec.enqueue(0, 1, 1, WallTime{0.0}, VirtualTime{}, 8.0, 1.0);
  rec.enqueue(2, 1, 2, WallTime{1.0}, VirtualTime{}, 8.0, 2.0);
  rec.dequeue(2, 5, 3, WallTime{2.0}, VirtualTime{}, 8.0, 1.0);
  const std::vector<Event> all = rec.snapshot();

  EventFilter by_node;
  by_node.node = 2;
  EXPECT_EQ(filter_events(all, by_node).size(), 2u);
  EventFilter by_flow;
  by_flow.flow = 5;
  EXPECT_EQ(filter_events(all, by_flow).size(), 1u);
  EventFilter by_kind;
  by_kind.kind = EventKind::kDequeue;
  EXPECT_EQ(filter_events(all, by_kind).size(), 1u);
  EventFilter by_since;
  by_since.since = 1.0;
  EXPECT_EQ(filter_events(all, by_since).size(), 2u);
  EventFilter combined;
  combined.node = 2;
  combined.kind = EventKind::kEnqueue;
  EXPECT_EQ(filter_events(all, combined).size(), 1u);
}

TEST(Export, DiffFindsDivergenceAndLengthMismatch) {
  FlightRecorder a(8);
  a.enqueue(0, 1, 1, WallTime{0.0}, VirtualTime{}, 8.0, 1.0);
  a.enqueue(0, 2, 2, WallTime{1.0}, VirtualTime{}, 8.0, 2.0);
  FlightRecorder b(8);
  b.enqueue(0, 1, 1, WallTime{0.0}, VirtualTime{}, 8.0, 1.0);
  b.enqueue(0, 3, 2, WallTime{1.0}, VirtualTime{}, 8.0, 2.0);
  b.drop(0, 3, 9, WallTime{2.0}, 8.0);

  const std::vector<EventDiff> diffs =
      diff_events(a.snapshot(), b.snapshot());
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].index, 1u);
  EXPECT_EQ(diffs[0].field, "flow");
  EXPECT_EQ(diffs[1].index, 2u);
  EXPECT_EQ(diffs[1].field, "missing");
  EXPECT_TRUE(diffs[1].lhs.empty());
}

// Span host-ns payloads are wall-clock measurements; two recordings of the
// same run must still diff clean.
TEST(Export, DiffIgnoresSpanHostNs) {
  FlightRecorder a(8);
  a.span_begin("link.enqueue", WallTime{0.0});
  a.span_end("link.enqueue", WallTime{0.0}, 1234.0);
  FlightRecorder b(8);
  b.span_begin("link.enqueue", WallTime{0.0});
  b.span_end("link.enqueue", WallTime{0.0}, 9876.0);
  EXPECT_TRUE(diff_events(a.snapshot(), b.snapshot()).empty());

  // ...but a different span name is a real divergence.
  FlightRecorder c(8);
  c.span_begin("link.dequeue", WallTime{0.0});
  c.span_end("link.dequeue", WallTime{0.0}, 1234.0);
  EXPECT_FALSE(diff_events(a.snapshot(), c.snapshot()).empty());
}

// The compile gate: with HFQ_TRACE off the scheduler hooks must record
// nothing (they do not even evaluate their arguments); with it on, a full
// fig-2-style run must produce the expected event mix.
TEST(Hooks, SchedulerEventsFollowCompileGate) {
  FlightRecorder rec(1 << 12);
  {
    RecordScope scope(rec);
    core::Wf2qPlus s(8.0);
    s.add_flow(0, 4.0);
    for (net::FlowId j = 1; j <= 10; ++j) s.add_flow(j, 0.4);
    sim::Simulator sim;
    sim::Link link(sim, s, 8.0);
    sim.at(0.0, [&link] {
      std::uint64_t id = 0;
      for (int k = 0; k < 11; ++k) {
        net::Packet p;
        p.flow = 0;
        p.size_bytes = 1;
        p.id = id++;
        link.submit(p);
      }
      for (net::FlowId j = 1; j <= 10; ++j) {
        net::Packet p;
        p.flow = j;
        p.size_bytes = 1;
        p.id = id++;
        link.submit(p);
      }
    });
    sim.run();
  }
  if (!compiled_in()) {
    EXPECT_EQ(rec.total_recorded(), 0u)
        << "HFQ_TRACE is off: hooks must be zero-cost no-ops";
    return;
  }
  const std::vector<Event> events = rec.snapshot();
  std::set<EventKind> kinds;
  std::size_t enq = 0, deq = 0;
  for (const Event& e : events) {
    kinds.insert(e.kind);
    if (e.kind == EventKind::kEnqueue) ++enq;
    if (e.kind == EventKind::kDequeue) ++deq;
  }
  EXPECT_EQ(enq, 21u);  // 11 + 10 packets accepted
  EXPECT_EQ(deq, 21u);  // all of them served
  EXPECT_TRUE(kinds.count(EventKind::kVtimeUpdate));
  EXPECT_TRUE(kinds.count(EventKind::kEligibilityFlip));
  EXPECT_TRUE(kinds.count(EventKind::kEligsetOp));
  EXPECT_TRUE(kinds.count(EventKind::kSpanBegin));
  EXPECT_TRUE(kinds.count(EventKind::kSpanEnd));
  // Sequence numbers are strictly increasing in snapshot order.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

}  // namespace
}  // namespace hfq::obs
