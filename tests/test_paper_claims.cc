// Pins the paper's quantitative claims beyond Fig. 2: the §3.1 "1001
// classes / 120 ms" example, the Theorem 3/4 delay bounds and WFI bounds,
// and the minimum-slope property of the Eq. 27 virtual time function.
#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/hpfq.h"
#include "core/wf2qplus.h"
#include "fluid/gps.h"
#include "harness.h"
#include "sched/wf2q.h"
#include "sched/wfq.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "stats/wfi_estimator.h"
#include "traffic/leaky_bucket.h"
#include "util/rng.h"

namespace hfq {
namespace {

using net::FlowId;
using net::Packet;
using testing::TimedArrival;
using testing::packet;

// §3.1: "there are 1001 classes sharing a 100 Mbps link with the maximum
// packet size of 1500 bytes. For a real-time session reserving 30% of the
// link bandwidth, its packet may be delayed by 120 ms in just one hop! In
// contrast, if GPS or H-GPS is used, the worst-case delay for a packet
// arriving at an empty queue is 0.4 ms."
//
// Construction: class A (50 Mbps) holds a best-effort session (20 Mbps)
// and the real-time session (30 Mbps); 1000 sibling classes (50 kbps each)
// each have one packet queued at t=0. Best-effort bursts; under H-WFQ the
// root serves class A 1000 packets ahead of its fluid schedule, so when the
// real-time packet arrives it must wait for all 1000 siblings:
// 1000 * 12 kbit / 100 Mbps = 120 ms. Under H-WF²Q+ class A was never
// allowed ahead, and the real-time packet departs within about a packet
// time of the GPS figure (12 kbit / 30 Mbps = 0.4 ms).
TEST(PaperClaims, Section31ThousandClassExampleHWfqVsHWf2qPlus) {
  constexpr double kLink = 100e6;
  constexpr std::uint32_t kBytes = 1500;  // 12 kbit packets
  constexpr int kN = 1000;
  constexpr FlowId kBe = 0, kRt = 1;

  auto scenario = [&](auto& h) {
    h.add_internal(h.root(), 50e6);  // class A = node 1
    h.add_leaf(1, 20e6, kBe);
    h.add_leaf(1, 30e6, kRt);
    for (int j = 0; j < kN; ++j) {
      h.add_leaf(h.root(), 50e3, static_cast<FlowId>(2 + j));
    }
    sim::Simulator sim;
    sim::Link link(sim, h, kLink);
    double probe_delay = -1.0;
    link.set_delivery([&](const Packet& p, net::Time t) {
      if (p.flow == kRt) probe_delay = t - p.arrival;
    });
    sim.at(0.0, [&] {
      for (int k = 0; k < 1200; ++k) link.submit(packet(kBe, kBytes, k));
      for (int j = 0; j < kN; ++j) {
        link.submit(packet(static_cast<FlowId>(2 + j), kBytes, 10000 + j));
      }
    });
    // The probe arrives when H-WFQ has just finished running class A a full
    // light-class tag gap ahead (1000 packets = 120 ms of link time).
    sim.at(0.120, [&] { link.submit(packet(kRt, kBytes, 999999)); });
    sim.run();
    return probe_delay;
  };

  core::HWfq hwfq(kLink);
  const double d_wfq = scenario(hwfq);
  core::HWf2qPlus hwf2qp(kLink);
  const double d_wf2qp = scenario(hwf2qp);

  // H-WFQ: ≈120 ms (within 15%), the paper's headline number.
  EXPECT_GT(d_wfq, 0.100);
  EXPECT_LT(d_wfq, 0.140);
  // H-WF²Q+: within a few packet times of the 0.4 ms GPS figure.
  EXPECT_LT(d_wf2qp, 0.002);
}

// Theorem 4(3): WF²Q+ delay bound sigma/r_i + Lmax/r for (sigma, r_i)
// constrained sessions, under adversarial greedy cross traffic — swept over
// random bucket depths and rates.
TEST(PaperClaims, Theorem4DelayBoundWf2qPlusRandomized) {
  util::Rng rng(555);
  for (int trial = 0; trial < 10; ++trial) {
    const double link = 8000.0;
    const std::uint32_t bytes = 125;  // 1000 bits
    const double lmax = 1000.0;
    const double r0 = rng.uniform(0.1, 0.4) * link;
    const double sigma = rng.uniform(1.0, 5.0) * lmax;

    core::Wf2qPlus s(link);
    s.add_flow(0, r0);
    s.add_flow(1, (link - r0) / 2.0);
    s.add_flow(2, (link - r0) / 2.0);

    sim::Simulator sim;
    sim::Link link_obj(sim, s, link);
    double max_delay = 0.0;
    link_obj.set_delivery([&](const Packet& p, net::Time t) {
      if (p.flow == 0) max_delay = std::max(max_delay, t - p.arrival);
    });
    traffic::LeakyBucketShaper shaper(
        sim, [&](Packet p) { return link_obj.submit(p); }, sigma, r0);
    double t = 0.0;
    std::uint64_t id = 0;
    for (int i = 0; i < 200; ++i) {
      t += rng.uniform(0.0, 4.0 * lmax / r0);
      const int burst = static_cast<int>(rng.uniform_int(1, 4));
      for (int k = 0; k < burst; ++k) {
        sim.at(t, [&shaper, p = packet(0, bytes, id++)]() mutable {
          shaper.offer(p);
        });
      }
    }
    sim.at(0.0, [&] {
      for (int k = 0; k < 4000; ++k) {
        link_obj.submit(packet(1, bytes, 100000 + 2 * k));
        link_obj.submit(packet(2, bytes, 100001 + 2 * k));
      }
    });
    sim.run();
    // + one packet transmission of measurement slack (delay includes the
    // probe's own transmission).
    const double bound = sigma / r0 + lmax / link + lmax / link;
    EXPECT_LE(max_delay, bound + 1e-9) << "trial " << trial;
  }
}

// Theorem 3(2)/4(2): measured B-WFI of every session under WF²Q and WF²Q+
// stays within alpha_i = L_i,max + (L_max − L_i,max) r_i/r even with mixed
// packet sizes.
TEST(PaperClaims, Theorem4WfiBoundMixedPacketSizes) {
  const double link = 8000.0;
  const double lmax = 8.0 * 200;  // 1600 bits
  for (int which = 0; which < 2; ++which) {
    const double rates[3] = {4000.0, 2000.0, 2000.0};
    const std::uint32_t sizes[3] = {100, 200, 50};  // flow's own max size
    // add_flow is a concrete-class API (it registers policy-specific
    // state), so register before erasing the type.
    std::unique_ptr<net::Scheduler> s;
    if (which == 0) {
      auto w = std::make_unique<sched::Wf2q>(link);
      for (FlowId f = 0; f < 3; ++f) w->add_flow(f, rates[f]);
      s = std::move(w);
    } else {
      auto w = std::make_unique<core::Wf2qPlus>(link);
      for (FlowId f = 0; f < 3; ++f) w->add_flow(f, rates[f]);
      s = std::move(w);
    }

    sim::Simulator sim;
    sim::Link link_obj(sim, *s, link);
    std::vector<stats::WfiEstimator> wfi;
    for (FlowId f = 0; f < 3; ++f) wfi.emplace_back(rates[f] / link);
    link_obj.set_delivery([&](const Packet& p, net::Time) {
      for (FlowId f = 0; f < 3; ++f) {
        wfi[f].on_server_departure(p.size_bits(),
                                   p.flow == f ? p.size_bits() : 0.0);
      }
    });
    util::Rng rng(42 + which);
    sim.at(0.0, [&] {
      for (FlowId f = 0; f < 3; ++f) wfi[f].backlog_start();
      std::uint64_t id = 0;
      for (int k = 0; k < 500; ++k) {
        for (FlowId f = 0; f < 3; ++f) {
          // Random sizes up to the flow's own maximum.
          const auto b = static_cast<std::uint32_t>(
              rng.uniform_int(10, sizes[f]));
          link_obj.submit(packet(f, b, id++));
        }
      }
    });
    sim.run_until(40.0);  // all still backlogged here
    for (FlowId f = 0; f < 3; ++f) {
      const double li = 8.0 * sizes[f];
      const double alpha = li + (lmax - li) * rates[f] / link;
      // Eq. 30's constant assumes the real-time form of V; the
      // service-quantized form used here (the paper's own pseudocode) adds
      // at most a sub-packet term, so assert the paper's headline property:
      // the WFI is on the order of ONE maximum packet — never growing with
      // the number or size-mix of competitors (contrast: WFQ's N/2 packets
      // in bench_table_wfi_vs_n).
      EXPECT_LE(wfi[f].bwfi_bits(), lmax + 1e-6)
          << (which == 0 ? "WF2Q" : "WF2Q+") << " flow " << f;
      // And it should not be far above the Eq. 30 constant either.
      EXPECT_LE(wfi[f].bwfi_bits(), alpha + 0.5 * lmax)
          << (which == 0 ? "WF2Q" : "WF2Q+") << " flow " << f;
    }
  }
}

// The "minimum slope property" of Eq. 27 (§3.4): across any sequence of
// selections, V advances at least as fast as the reference (service) time,
// and never drops below the smallest start tag of a backlogged head.
TEST(PaperClaims, Eq27MinimumSlopeProperty) {
  const double link = 8000.0;
  core::Wf2qPlus s(link);
  for (FlowId f = 0; f < 4; ++f) s.add_flow(f, 2000.0);
  util::Rng rng(9);
  std::uint64_t id = 0;
  double served_time = 0.0;  // cumulative service normalized by link rate
  double prev_v = 0.0;
  double prev_served = 0.0;
  // Keep the server continuously busy.
  for (int round = 0; round < 2000; ++round) {
    const auto f = static_cast<FlowId>(rng.uniform_int(0, 3));
    const auto bytes = static_cast<std::uint32_t>(rng.uniform_int(1, 50));
    s.enqueue(packet(f, bytes, id++), served_time);
    if (s.backlog_packets() > 4) {
      const auto p = s.dequeue(served_time);
      ASSERT_TRUE(p.has_value());
      served_time += p->size_bits() / link;
      // Minimum slope: dV >= d(reference time).
      EXPECT_GE(s.vtime() - prev_v, (served_time - prev_served) - 1e-9);
      prev_v = s.vtime();
      prev_served = served_time;
    }
  }
}

// WFQ's delay bound (within one packet of GPS, [14]) also holds in our WFQ
// implementation — the baselines must be faithful too.
TEST(PaperClaims, WfqDelayBoundHolds) {
  util::Rng rng(77);
  const double link = 8000.0;
  const double lmax = 1000.0;
  const double r0 = 2000.0;
  const double sigma = 3.0 * lmax;

  sched::Wfq s(link);
  s.add_flow(0, r0);
  s.add_flow(1, 3000.0);
  s.add_flow(2, 3000.0);

  sim::Simulator sim;
  sim::Link link_obj(sim, s, link);
  double max_delay = 0.0;
  link_obj.set_delivery([&](const Packet& p, net::Time t) {
    if (p.flow == 0) max_delay = std::max(max_delay, t - p.arrival);
  });
  traffic::LeakyBucketShaper shaper(
      sim, [&](Packet p) { return link_obj.submit(p); }, sigma, r0);
  double t = 0.0;
  std::uint64_t id = 0;
  for (int i = 0; i < 200; ++i) {
    t += rng.uniform(0.0, 4.0 * lmax / r0);
    sim.at(t, [&shaper, p = packet(0, 125, id++)]() mutable {
      shaper.offer(p);
    });
  }
  sim.at(0.0, [&] {
    for (int k = 0; k < 4000; ++k) {
      link_obj.submit(packet(1, 125, 100000 + 2 * k));
      link_obj.submit(packet(2, 125, 100001 + 2 * k));
    }
  });
  sim.run();
  const double bound = sigma / r0 + lmax / link + lmax / link;
  EXPECT_LE(max_delay, bound + 1e-9);
}

}  // namespace
}  // namespace hfq
