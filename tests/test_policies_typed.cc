// Typed-test suite: the invariants every H-PFQ node policy must satisfy,
// instantiated over all six policies (TYPED_TEST — the hierarchical
// counterpart of test_sched_param.cc's TEST_P suite).
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/hierarchy.h"
#include "core/hpfq.h"
#include "harness.h"
#include "util/rng.h"

namespace hfq {
namespace {

using net::FlowId;
using net::Packet;
using testing::TimedArrival;
using testing::packet;
using testing::run_trace;

template <typename Policy>
class HPfqPolicy : public ::testing::Test {
 public:
  // Two-level tree: root{A{f0, f1}, f2}. (Schedulers are pinned — links
  // hold references — so they are handed out by unique_ptr.)
  static std::unique_ptr<core::HPfq<Policy>> make() {
    auto h = std::make_unique<core::HPfq<Policy>>(8000.0);
    const auto a = h->add_internal(h->root(), 4000.0);
    h->add_leaf(a, 2000.0, 0);
    h->add_leaf(a, 2000.0, 1);
    h->add_leaf(h->root(), 4000.0, 2);
    return h;
  }
};

using Policies =
    ::testing::Types<core::Wf2qPlusPolicy, core::GpsSffPolicy,
                     core::GpsSeffPolicy, core::ScfqPolicy, core::SfqPolicy,
                     core::DrrPolicy>;
TYPED_TEST_SUITE(HPfqPolicy, Policies);

TYPED_TEST(HPfqPolicy, DeliversAllPacketsInFlowOrder) {
  auto hp = TestFixture::make();
  auto& h = *hp;
  util::Rng rng(7);
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += rng.uniform(0.0, 0.3);
    arr.push_back({t, packet(static_cast<FlowId>(rng.uniform_int(0, 2)),
                             static_cast<std::uint32_t>(rng.uniform_int(10, 125)),
                             id++)});
  }
  const auto deps = run_trace(h, 8000.0, arr);
  ASSERT_EQ(deps.size(), arr.size());
  std::map<FlowId, std::uint64_t> last;
  for (const auto& d : deps) {
    if (last.count(d.pkt.flow) != 0) {
      EXPECT_LT(last[d.pkt.flow], d.pkt.id);
    }
    last[d.pkt.flow] = d.pkt.id;
  }
  EXPECT_EQ(h.backlog_packets(), 0u);
}

TYPED_TEST(HPfqPolicy, WorkConservingWhenSaturated) {
  auto hp = TestFixture::make();
  auto& h = *hp;
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 60; ++k) {
    for (FlowId f = 0; f < 3; ++f) arr.push_back({0.0, packet(f, 125, id++)});
  }
  const auto deps = run_trace(h, 8000.0, arr);
  ASSERT_EQ(deps.size(), arr.size());
  for (std::size_t i = 0; i < deps.size(); ++i) {
    EXPECT_NEAR(deps[i].time, 0.125 * static_cast<double>(i + 1), 1e-9);
  }
}

TYPED_TEST(HPfqPolicy, LongRunSharesFollowHierarchy) {
  auto hp = TestFixture::make();
  auto& h = *hp;
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 800; ++k) {
    for (FlowId f = 0; f < 3; ++f) arr.push_back({0.0, packet(f, 125, id++)});
  }
  const auto deps = run_trace(h, 8000.0, arr);
  std::map<FlowId, double> bits;
  for (const auto& d : deps) {
    if (d.time <= 80.0) bits[d.pkt.flow] += d.pkt.size_bits();
  }
  // f0, f1: 2000 bps; f2: 4000 bps.
  EXPECT_NEAR(bits[0], 2000.0 * 80, 20000.0);
  EXPECT_NEAR(bits[1], 2000.0 * 80, 20000.0);
  EXPECT_NEAR(bits[2], 4000.0 * 80, 20000.0);
}

TYPED_TEST(HPfqPolicy, ClassInheritsIdleSiblingBandwidth) {
  auto hp = TestFixture::make();
  auto& h = *hp;
  // Only flow 0 active: it should get the whole link (work conservation
  // through both levels), not just its 2000 bps guarantee.
  std::vector<TimedArrival> arr;
  for (int k = 0; k < 40; ++k) {
    arr.push_back({0.0, packet(0, 125, static_cast<std::uint64_t>(k))});
  }
  const auto deps = run_trace(h, 8000.0, arr);
  ASSERT_EQ(deps.size(), 40u);
  EXPECT_NEAR(deps.back().time, 40 * 0.125, 1e-9);
}

TYPED_TEST(HPfqPolicy, SurvivesManyBusyPeriods) {
  auto hp = TestFixture::make();
  auto& h = *hp;
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int period = 0; period < 50; ++period) {
    const double t0 = period * 10.0;
    for (int k = 0; k < 5; ++k) {
      arr.push_back({t0, packet(static_cast<FlowId>(k % 3), 125, id++)});
    }
  }
  const auto deps = run_trace(h, 8000.0, arr);
  ASSERT_EQ(deps.size(), arr.size());
  // Each burst of 5 drains in 0.625 s, long before the next.
  for (int period = 0; period < 50; ++period) {
    const auto& last_of_period =
        deps[static_cast<std::size_t>(period * 5 + 4)];
    EXPECT_NEAR(last_of_period.time, period * 10.0 + 0.625, 1e-9);
  }
}

}  // namespace
}  // namespace hfq
