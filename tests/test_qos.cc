// Tests for the admission-control module (src/qos): validation, Corollary 2
// bound computation, admission decisions — and a closed loop showing the
// computed bound really holds under adversarial load.
#include <algorithm>
#include <gtest/gtest.h>

#include "core/hierarchy.h"
#include "core/hpfq.h"
#include "qos/admission.h"
#include "harness.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "traffic/leaky_bucket.h"
#include "util/rng.h"

namespace hfq::qos {
namespace {

core::Hierarchy demo_tree() {
  core::Hierarchy spec(80.0);
  const auto a = spec.add_class(0, "A", 40.0);
  spec.add_session(a, "rt", 8.0, 0);
  spec.add_session(a, "be", 32.0, 1);
  spec.add_session(0, "b", 40.0, 2);
  return spec;
}

TEST(Admission, ValidTreeHasNoIssues) {
  const auto spec = demo_tree();
  EXPECT_TRUE(validate(spec).empty());
}

TEST(Admission, DetectsOversubscribedClass) {
  core::Hierarchy spec(80.0);
  const auto a = spec.add_class(0, "A", 40.0);
  spec.add_session(a, "x", 30.0, 0);
  spec.add_session(a, "y", 30.0, 1);  // 60 > 40
  const auto issues = validate(spec);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].node, a);
  EXPECT_DOUBLE_EQ(issues[0].children_rate, 60.0);
  EXPECT_DOUBLE_EQ(issues[0].node_rate, 40.0);
}

TEST(Admission, DetectsOversubscribedRoot) {
  core::Hierarchy spec(80.0);
  spec.add_session(0, "x", 50.0, 0);
  spec.add_session(0, "y", 50.0, 1);
  EXPECT_EQ(validate(spec).size(), 1u);
}

TEST(Admission, DelayBoundMatchesHandComputation) {
  const auto spec = demo_tree();
  const double lmax = 80.0;
  const double sigma = 240.0;
  // rt: sigma/8 + Lmax/40 (class A) + Lmax/80 (root) + Lmax/80 (tx).
  const double expect = 240.0 / 8.0 + 80.0 / 40.0 + 1.0 + 1.0;
  const auto bound = delay_bound_for_flow(spec, 0, sigma, lmax);
  ASSERT_TRUE(bound.has_value());
  EXPECT_NEAR(*bound, expect, 1e-12);
}

TEST(Admission, DelayBoundRejectsNonSessions) {
  const auto spec = demo_tree();
  EXPECT_FALSE(delay_bound(spec, 0, 100.0, 80.0).has_value());  // root
  EXPECT_FALSE(delay_bound(spec, 1, 100.0, 80.0).has_value());  // class A
  EXPECT_FALSE(delay_bound_for_flow(spec, 99, 100.0, 80.0).has_value());
}

TEST(Admission, EvaluateAdmitsWithinHeadroomAndTarget) {
  const auto spec = demo_tree();  // class A has 0 headroom; root has 0
  core::Hierarchy spacious(80.0);
  const auto a = spacious.add_class(0, "A", 40.0);
  spacious.add_session(a, "rt", 8.0, 0);
  AdmissionRequest req;
  req.parent = a;
  req.rate_bps = 16.0;
  req.sigma_bits = 160.0;
  req.target_s = 20.0;
  const auto d = evaluate(spacious, req, 80.0);
  EXPECT_TRUE(d.admitted) << d.reason;
  EXPECT_NEAR(d.headroom_bps, 32.0, 1e-9);
  EXPECT_NEAR(d.bound_s, 160.0 / 16.0 + 2.0 + 1.0 + 1.0, 1e-9);
  (void)spec;
}

TEST(Admission, EvaluateRejectsWhenNoHeadroom) {
  const auto spec = demo_tree();
  AdmissionRequest req;
  req.parent = 1;  // class A, fully allocated (8 + 32 = 40)
  req.rate_bps = 1.0;
  req.sigma_bits = 80.0;
  req.target_s = 100.0;
  const auto d = evaluate(spec, req, 80.0);
  EXPECT_FALSE(d.admitted);
  EXPECT_NEAR(d.headroom_bps, 0.0, 1e-9);
}

TEST(Admission, EvaluateRejectsWhenTargetUnreachable) {
  core::Hierarchy spec(80.0);
  const auto a = spec.add_class(0, "A", 40.0);
  (void)a;
  AdmissionRequest req;
  req.parent = a;
  req.rate_bps = 4.0;
  req.sigma_bits = 400.0;  // sigma/rho alone = 100 s
  req.target_s = 50.0;
  const auto d = evaluate(spec, req, 80.0);
  EXPECT_FALSE(d.admitted);
  EXPECT_GT(d.bound_s, 50.0);
}

TEST(Admission, EvaluateRejectsLeafParent) {
  const auto spec = demo_tree();
  AdmissionRequest req;
  req.parent = 2;  // "rt" is a session
  req.rate_bps = 1.0;
  const auto d = evaluate(spec, req, 80.0);
  EXPECT_FALSE(d.admitted);
}

// Closed loop: the admission bound must hold when the admitted session
// actually runs against greedy cross traffic.
TEST(Admission, AdmittedBoundHoldsInSimulation) {
  core::Hierarchy spec(80.0);
  const auto a = spec.add_class(0, "A", 40.0);
  spec.add_session(a, "rt", 8.0, 0);
  spec.add_session(a, "be", 32.0, 1);
  spec.add_session(0, "b", 40.0, 2);
  ASSERT_TRUE(validate(spec).empty());

  const double lmax = 80.0;
  const double sigma = 240.0;
  const auto bound = delay_bound_for_flow(spec, 0, sigma, lmax);
  ASSERT_TRUE(bound.has_value());

  auto sched = spec.build_packet<core::Wf2qPlusPolicy>();
  sim::Simulator sim;
  sim::Link link(sim, *sched, 80.0);
  double max_delay = 0.0;
  link.set_delivery([&](const net::Packet& p, net::Time t) {
    if (p.flow == 0) max_delay = std::max(max_delay, t - p.arrival);
  });
  traffic::LeakyBucketShaper shaper(
      sim, [&link](net::Packet p) { return link.submit(p); }, sigma, 8.0);
  util::Rng rng(101);
  std::uint64_t id = 0;
  double t = 0.0;
  for (int i = 0; i < 150; ++i) {
    t += rng.uniform(0.0, 40.0);
    const int burst = static_cast<int>(rng.uniform_int(1, 3));
    for (int k = 0; k < burst; ++k) {
      sim.at(t, [&shaper, p = hfq::testing::packet(0, 10, id++)]() mutable {
        shaper.offer(p);
      });
    }
  }
  sim.at(0.0, [&] {
    for (int k = 0; k < 8000; ++k) {
      link.submit(hfq::testing::packet(1, 10, 100000 + 2 * k));
      link.submit(hfq::testing::packet(2, 10, 100001 + 2 * k));
    }
  });
  sim.run();
  EXPECT_GT(max_delay, 0.0);
  EXPECT_LE(max_delay, *bound + 1e-9);
}

}  // namespace
}  // namespace hfq::qos
