// Runner subsystem: seed derivation, grid expansion, metrics registry
// semantics, thread-pool coverage, and the end-to-end determinism contract
// (jobs-invariance and standalone shard replay).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/tree_parser.h"
#include "runner/campaign.h"
#include "runner/export.h"
#include "runner/metrics.h"
#include "runner/scenario.h"
#include "runner/shard.h"
#include "runner/splitmix.h"
#include "runner/thread_pool.h"

namespace hfq::runner {
namespace {

// Golden values of the reference SplitMix64 sequence (Steele/Lea/Flood);
// derive_shard_seed(c, k) must be the (k+1)-th output of the stream seeded
// with c. 0xe220a8397b1dcdaf is the widely-published first output for
// seed 0.
TEST(Splitmix, MatchesReferenceSequence) {
  EXPECT_EQ(derive_shard_seed(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(derive_shard_seed(0, 1), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(derive_shard_seed(1, 0), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(derive_shard_seed(42, 0), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(derive_shard_seed(42, 1), 0x28efe333b266f103ULL);
  EXPECT_EQ(derive_shard_seed(42, 2), 0x47526757130f9f52ULL);
}

TEST(Splitmix, SequentialDerivationAgreesWithStepping) {
  std::uint64_t state = 42;
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(derive_shard_seed(42, k), splitmix64_next(state)) << k;
  }
}

TEST(Splitmix, AdjacentSeedsAndIndicesAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t c = 0; c < 4; ++c) {
    for (std::uint64_t k = 0; k < 64; ++k) {
      seen.insert(derive_shard_seed(c, k));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 64u);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (const unsigned jobs : {1u, 2u, 7u}) {
    ThreadPool pool(jobs);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ThreadPoolTest, ZeroJobsPicksHardwareConcurrency) {
  EXPECT_GE(ThreadPool(0).jobs(), 1u);
}

TEST(MetricsRegistryTest, MergeSumsCountersAndGauges) {
  MetricsRegistry a, b;
  a.counter("n") = 3;
  b.counter("n") = 4;
  b.counter("only_b") = 7;
  a.gauge("g") = 1.5;
  b.gauge("g") = 2.5;
  a.merge(b);
  EXPECT_EQ(a.counter("n"), 7u);
  EXPECT_EQ(a.counter("only_b"), 7u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 4.0);
}

TEST(MetricsRegistryTest, FlattenDropsTimingWhenDeterministicOnly) {
  MetricsRegistry m;
  m.counter("events") = 1;
  m.gauge("timing/wall_ns") = 123.0;
  const auto all = m.flatten(false);
  const auto det = m.flatten(true);
  EXPECT_EQ(all.size(), 2u);
  ASSERT_EQ(det.size(), 1u);
  EXPECT_EQ(det[0].first, "events");
}

TEST(MetricsRegistryTest, DeterministicEqualsIgnoresTimingDiffs) {
  MetricsRegistry a, b;
  a.counter("n") = 5;
  b.counter("n") = 5;
  a.gauge("timing/wall_ns") = 1.0;
  b.gauge("timing/wall_ns") = 999.0;
  std::string why;
  EXPECT_TRUE(a.deterministic_equals(b, &why)) << why;
  b.counter("n") = 6;
  EXPECT_FALSE(a.deterministic_equals(b, &why));
  EXPECT_NE(why.find("n"), std::string::npos);
}

TEST(ScenarioTest, ExpandOrderAndSeeds) {
  CampaignSpec spec;
  spec.seed = 7;
  spec.repeats = 2;
  spec.schedulers = {"hwf2q+", "hdrr"};
  spec.trees = {{"a", "..."}, {"b", "..."}};
  spec.loads = {0.5, 1.5};
  spec.traffics = {"cbr"};
  const auto grid = spec.expand();
  // scheduler × tree × load × traffic × repeat, repeat innermost.
  ASSERT_EQ(grid.size(), 2u * 2u * 2u * 1u * 2u);
  EXPECT_EQ(grid[0].scheduler, "hwf2q+");
  EXPECT_EQ(grid[0].tree_name, "a");
  EXPECT_DOUBLE_EQ(grid[0].load, 0.5);
  EXPECT_EQ(grid[0].repeat, 0);
  EXPECT_EQ(grid[1].repeat, 1);
  EXPECT_DOUBLE_EQ(grid[2].load, 1.5);
  EXPECT_EQ(grid[8].scheduler, "hdrr");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].index, i);
    EXPECT_EQ(grid[i].seed, derive_shard_seed(7, i));
  }
}

TEST(ScenarioTest, ParserRejectsUnknownSchedulerAndDirective) {
  {
    std::istringstream in("schedulers hwf2q+ nosuch\n");
    EXPECT_THROW(parse_campaign(in), std::runtime_error);
  }
  {
    std::istringstream in("frobnicate 3\n");
    EXPECT_THROW(parse_campaign(in), std::runtime_error);
  }
  {
    std::istringstream in("tree t {\nlink 8M\n");  // unterminated block
    EXPECT_THROW(parse_campaign(in), std::runtime_error);
  }
}

TEST(ScenarioTest, ParserReadsInlineAndSyntheticTrees) {
  std::istringstream in(
      "campaign demo\n"
      "seed 9\n"
      "schedulers hwf2q+\n"
      "tree flat fanout=4 depth=1\n"
      "tree two {\n"
      "  link 8M\n"
      "  sa 5M flow=0\n"
      "  sb 3M flow=1\n"
      "}\n");
  const CampaignSpec spec = parse_campaign(in);
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.seed, 9u);
  ASSERT_EQ(spec.trees.size(), 2u);
  const core::Hierarchy flat = core::parse_hierarchy(spec.trees[0].text);
  const core::Hierarchy two = core::parse_hierarchy(spec.trees[1].text);
  EXPECT_DOUBLE_EQ(two.link_rate(), 8e6);
  std::size_t flat_leaves = 0;
  for (std::uint32_t i = 1; i < flat.size(); ++i) {
    if (flat.node(i).leaf) ++flat_leaves;
  }
  EXPECT_EQ(flat_leaves, 4u);
}

TEST(ScenarioTest, SynthTreeLeafCountIsFanoutToDepth) {
  const core::Hierarchy h = core::parse_hierarchy(synth_tree(3, 2, 9e6));
  std::size_t leaves = 0;
  for (std::uint32_t i = 1; i < h.size(); ++i) {
    if (h.node(i).leaf) ++leaves;
  }
  EXPECT_EQ(leaves, 9u);
  EXPECT_DOUBLE_EQ(h.link_rate(), 9e6);
}

CampaignSpec small_campaign() {
  CampaignSpec spec;
  spec.name = "t";
  spec.seed = 42;
  spec.duration_s = 0.05;
  spec.packet_bytes = 250;
  spec.schedulers = {"hwf2q+", "hsfq"};
  spec.trees = {{"flat", synth_tree(4, 1, 4e6)}};
  spec.loads = {0.9};
  spec.traffics = {"poisson"};
  return spec;
}

TEST(CampaignTest, JobsInvariance) {
  const CampaignSpec spec = small_campaign();
  const CampaignResult r1 = run_campaign(spec, 1);
  const CampaignResult r4 = run_campaign(spec, 4);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r4.ok());
  std::string why;
  EXPECT_TRUE(campaigns_deterministically_equal(r1, r4, &why)) << why;
}

TEST(CampaignTest, ShardReplaysStandalone) {
  const CampaignSpec spec = small_campaign();
  const CampaignResult full = run_campaign(spec, 2);
  ASSERT_TRUE(full.ok());
  ASSERT_GE(full.shards.size(), 2u);
  const std::size_t k = full.shards.size() - 1;
  const CampaignResult solo = run_campaign(spec, 1, k);
  ASSERT_TRUE(solo.ok());
  ASSERT_EQ(solo.shards.size(), 1u);
  EXPECT_EQ(solo.shards[0].scenario.index, k);
  EXPECT_EQ(solo.shards[0].scenario.seed, full.shards[k].scenario.seed);
  std::string why;
  EXPECT_TRUE(solo.shards[0].metrics.deterministic_equals(
      full.shards[k].metrics, &why))
      << why;
}

TEST(CampaignTest, AggregateEqualsIndexOrderMergeOfShards) {
  const CampaignResult r = run_campaign(small_campaign(), 2);
  ASSERT_TRUE(r.ok());
  MetricsRegistry manual;
  for (const CampaignShard& s : r.shards) manual.merge(s.metrics);
  std::string why;
  EXPECT_TRUE(manual.deterministic_equals(r.aggregate, &why)) << why;
}

TEST(CampaignTest, BadSchedulerBecomesShardError) {
  CampaignSpec spec = small_campaign();
  spec.schedulers = {"hwf2q+"};
  spec.trees[0].text = "not a tree";
  const CampaignResult r = run_campaign(spec, 2);
  EXPECT_FALSE(r.ok());
  for (const CampaignShard& s : r.shards) EXPECT_FALSE(s.error.empty());
}

TEST(ExportTest, JsonAndCsvContainShardMetrics) {
  const CampaignResult r = run_campaign(small_campaign(), 1);
  ASSERT_TRUE(r.ok());
  std::ostringstream js, cs;
  write_campaign_json(js, r);
  write_campaign_csv(cs, r);
  const std::string j = js.str();
  EXPECT_NE(j.find("\"schema\": \"hfq-campaign-v1\""), std::string::npos);
  EXPECT_NE(j.find("\"packets/delivered\""), std::string::npos);
  EXPECT_NE(j.find("\"aggregate\""), std::string::npos);
  const std::string c = cs.str();
  EXPECT_NE(c.find("index,scheduler,tree,load,traffic,repeat,seed,metric,"
                   "value"),
            std::string::npos);
  EXPECT_NE(c.find("packets/delivered"), std::string::npos);
}

TEST(RunShardsTest, ExceptionsBecomeErrors) {
  ThreadPool pool(2);
  const auto shards =
      run_shards(0, 4, pool, [](ShardRun& s) {
        if (s.index == 2) throw std::runtime_error("boom");
        s.metrics.counter("ok") = 1;
      });
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_TRUE(shards[0].ok());
  EXPECT_FALSE(shards[2].ok());
  EXPECT_EQ(shards[2].error, "boom");
}

}  // namespace
}  // namespace hfq::runner
