// Tests for the one-level packet schedulers (src/sched + the core WF²Q+):
// exact reproduction of the paper's Fig. 2 timelines, fairness and
// work-conservation properties, and baseline-specific behaviour.
#include <map>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/wf2qplus.h"
#include "fluid/gps.h"
#include "harness.h"
#include "sched/drr.h"
#include "sched/fifo.h"
#include "sched/scfq.h"
#include "sched/sfq.h"
#include "sched/wf2q.h"
#include "sched/wfq.h"
#include "util/rng.h"

namespace hfq {
namespace {

using net::FlowId;
using net::Packet;
using testing::Departure;
using testing::TimedArrival;
using testing::fig2_arrivals;
using testing::packet;
using testing::run_trace;

// Registers the Fig. 2 flow set on any flat scheduler.
template <typename Sched>
void add_fig2_flows(Sched& s, int n_light = 10) {
  s.add_flow(0, 4.0);  // share 0.5 of the 8 bps link
  for (int j = 1; j <= n_light; ++j) {
    s.add_flow(static_cast<FlowId>(j), 0.4);  // share 0.05
  }
}

std::vector<FlowId> flow_order(const std::vector<Departure>& deps) {
  std::vector<FlowId> v;
  v.reserve(deps.size());
  for (const auto& d : deps) v.push_back(d.pkt.flow);
  return v;
}

// ------------------------------------------------------- Fig. 2 timelines

// WFQ bursts: the first ten session-0 packets go back-to-back, then the ten
// light sessions, then session 0's eleventh packet — the paper's Fig. 2
// middle timeline.
TEST(Fig2, WfqServiceOrderMatchesPaper) {
  sched::Wfq s(8.0);
  add_fig2_flows(s);
  const auto deps = run_trace(s, 8.0, fig2_arrivals());
  ASSERT_EQ(deps.size(), 21u);
  std::vector<FlowId> expect;
  for (int k = 0; k < 10; ++k) expect.push_back(0);
  for (int j = 1; j <= 10; ++j) expect.push_back(static_cast<FlowId>(j));
  expect.push_back(0);
  EXPECT_EQ(flow_order(deps), expect);
  for (std::size_t i = 0; i < deps.size(); ++i) {
    EXPECT_NEAR(deps[i].time, static_cast<double>(i + 1), 1e-9);
  }
}

// WF²Q interleaves: session 0 every other slot — the paper's Fig. 2 bottom
// timeline: p1^1, p2^1, p1^2, p3^1, ..., p1^10, p11^1, p1^11.
std::vector<FlowId> fig2_wf2q_expected() {
  std::vector<FlowId> expect;
  for (int j = 1; j <= 10; ++j) {
    expect.push_back(0);
    expect.push_back(static_cast<FlowId>(j));
  }
  expect.push_back(0);
  return expect;
}

TEST(Fig2, Wf2qServiceOrderMatchesPaper) {
  sched::Wf2q s(8.0);
  add_fig2_flows(s);
  const auto deps = run_trace(s, 8.0, fig2_arrivals());
  ASSERT_EQ(deps.size(), 21u);
  EXPECT_EQ(flow_order(deps), fig2_wf2q_expected());
}

// WF²Q+ must produce the same schedule as WF²Q on this scenario (Theorem 4:
// same policy class) while never touching the fluid system.
TEST(Fig2, Wf2qPlusServiceOrderMatchesWf2q) {
  core::Wf2qPlus s(8.0);
  add_fig2_flows(s);
  const auto deps = run_trace(s, 8.0, fig2_arrivals());
  ASSERT_EQ(deps.size(), 21u);
  EXPECT_EQ(flow_order(deps), fig2_wf2q_expected());
}

// The paper's §3.1 inaccuracy claim: by t=10 WFQ has served 10 session-0
// packets while GPS has served only 5 — a discrepancy of N/2 packets.
TEST(Fig2, WfqRunsNOver2PacketsAheadOfGps) {
  sched::Wfq s(8.0);
  add_fig2_flows(s);
  const auto deps = run_trace(s, 8.0, fig2_arrivals());
  int wfq_flow0_by_10 = 0;
  for (const auto& d : deps) {
    if (d.pkt.flow == 0 && d.time <= 10.0 + 1e-9) ++wfq_flow0_by_10;
  }
  EXPECT_EQ(wfq_flow0_by_10, 10);

  fluid::GpsServer<double> gps(8.0);
  gps.add_flow(0, 4.0);
  for (FlowId j = 1; j <= 10; ++j) gps.add_flow(j, 0.4);
  for (int k = 0; k < 11; ++k) gps.arrive(0.0, 0, 8.0);
  for (FlowId j = 1; j <= 10; ++j) gps.arrive(0.0, j, 8.0);
  gps.advance_to(10.0);
  EXPECT_NEAR(gps.work(0), 5 * 8.0, 1e-6);  // 5 packets
}

// WF²Q+ tracks GPS within one packet at every departure instant (§3.3).
TEST(Fig2, Wf2qPlusWithinOnePacketOfGps) {
  core::Wf2qPlus s(8.0);
  add_fig2_flows(s);
  const auto deps = run_trace(s, 8.0, fig2_arrivals());

  fluid::GpsServer<double> gps(8.0);
  gps.add_flow(0, 4.0);
  for (FlowId j = 1; j <= 10; ++j) gps.add_flow(j, 0.4);
  for (int k = 0; k < 11; ++k) gps.arrive(0.0, 0, 8.0);
  for (FlowId j = 1; j <= 10; ++j) gps.arrive(0.0, j, 8.0);

  std::map<FlowId, double> served_bits;
  for (const auto& d : deps) {
    served_bits[d.pkt.flow] += d.pkt.size_bits();
    gps.advance_to(d.time);
    for (const auto& [flow, bits] : served_bits) {
      EXPECT_LE(bits - gps.work(flow), 8.0 + 1e-6)
          << "flow " << flow << " at t=" << d.time;
    }
  }
}

// ------------------------------------------------ generic scheduler checks

// All departures present exactly once, per-flow FIFO, and the link never
// idles while packets are queued (work conservation: with arrivals only at
// t=0, departures are back-to-back).
template <typename Sched>
void check_basic_invariants(Sched& s, double rate_bps) {
  const auto arrivals = fig2_arrivals();
  const auto deps = run_trace(s, rate_bps, arrivals);
  ASSERT_EQ(deps.size(), arrivals.size());
  std::map<FlowId, std::uint64_t> last_id;
  for (const auto& d : deps) {
    if (last_id.count(d.pkt.flow) != 0) {
      EXPECT_LT(last_id[d.pkt.flow], d.pkt.id) << "FIFO violated";
    }
    last_id[d.pkt.flow] = d.pkt.id;
  }
  for (std::size_t i = 0; i < deps.size(); ++i) {
    EXPECT_NEAR(deps[i].time, static_cast<double>(i + 1), 1e-9)
        << "link idled while backlogged";
  }
}

TEST(SchedulerInvariants, Wfq) {
  sched::Wfq s(8.0);
  add_fig2_flows(s);
  check_basic_invariants(s, 8.0);
}
TEST(SchedulerInvariants, Wf2q) {
  sched::Wf2q s(8.0);
  add_fig2_flows(s);
  check_basic_invariants(s, 8.0);
}
TEST(SchedulerInvariants, Wf2qPlus) {
  core::Wf2qPlus s(8.0);
  add_fig2_flows(s);
  check_basic_invariants(s, 8.0);
}
TEST(SchedulerInvariants, Scfq) {
  sched::Scfq s;
  add_fig2_flows(s);
  check_basic_invariants(s, 8.0);
}
TEST(SchedulerInvariants, StartTimeFq) {
  sched::StartTimeFq s;
  add_fig2_flows(s);
  check_basic_invariants(s, 8.0);
}
TEST(SchedulerInvariants, Drr) {
  sched::Drr s(8.0, /*frame_bits=*/80.0);
  add_fig2_flows(s);
  check_basic_invariants(s, 8.0);
}

// Long-run throughput fairness: with every flow continuously backlogged,
// each flow's service tracks its guaranteed rate.
template <typename Sched>
void check_longrun_fairness(Sched& s, double rate_bps, double slack_bits) {
  // 3 flows with rates 1:2:5, all loaded with plenty of packets at t=0.
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  const int packets_per_flow = 400;
  for (int k = 0; k < packets_per_flow; ++k) {
    for (FlowId f = 0; f < 3; ++f) {
      arr.push_back(TimedArrival{0.0, packet(f, 10, id++)});
    }
  }
  const auto deps = run_trace(s, rate_bps, std::move(arr));
  const double t_end = 400.0;  // before any flow drains
  std::map<FlowId, double> bits;
  for (const auto& d : deps) {
    if (d.time <= t_end) bits[d.pkt.flow] += d.pkt.size_bits();
  }
  const double rates[3] = {1.0, 2.0, 5.0};
  for (FlowId f = 0; f < 3; ++f) {
    EXPECT_NEAR(bits[f], rates[f] * t_end, slack_bits) << "flow " << f;
  }
}

TEST(LongRunFairness, Wfq) {
  sched::Wfq s(8.0);
  s.add_flow(0, 1.0);
  s.add_flow(1, 2.0);
  s.add_flow(2, 5.0);
  check_longrun_fairness(s, 8.0, 200.0);
}
TEST(LongRunFairness, Wf2qPlus) {
  core::Wf2qPlus s(8.0);
  s.add_flow(0, 1.0);
  s.add_flow(1, 2.0);
  s.add_flow(2, 5.0);
  check_longrun_fairness(s, 8.0, 200.0);
}
TEST(LongRunFairness, Scfq) {
  sched::Scfq s;
  s.add_flow(0, 1.0);
  s.add_flow(1, 2.0);
  s.add_flow(2, 5.0);
  check_longrun_fairness(s, 8.0, 200.0);
}
TEST(LongRunFairness, StartTimeFq) {
  sched::StartTimeFq s;
  s.add_flow(0, 1.0);
  s.add_flow(1, 2.0);
  s.add_flow(2, 5.0);
  check_longrun_fairness(s, 8.0, 200.0);
}
TEST(LongRunFairness, Drr) {
  sched::Drr s(8.0, 160.0);
  s.add_flow(0, 1.0);
  s.add_flow(1, 2.0);
  s.add_flow(2, 5.0);
  check_longrun_fairness(s, 8.0, 400.0);  // frame-based: coarser
}

// --------------------------------------------------------- FIFO & drops

TEST(Fifo, ServesInArrivalOrderAcrossFlows) {
  sched::Fifo s;
  std::vector<TimedArrival> arr = {
      {0.0, packet(3, 1, 1)}, {0.0, packet(1, 1, 2)}, {0.0, packet(2, 1, 3)}};
  const auto deps = run_trace(s, 8.0, arr);
  ASSERT_EQ(deps.size(), 3u);
  EXPECT_EQ(deps[0].pkt.id, 1u);
  EXPECT_EQ(deps[1].pkt.id, 2u);
  EXPECT_EQ(deps[2].pkt.id, 3u);
}

TEST(Fifo, DropsWhenFull) {
  sched::Fifo s(/*capacity_packets=*/2);
  std::vector<TimedArrival> arr;
  for (int i = 0; i < 5; ++i) arr.push_back({0.0, packet(0, 1, i)});
  const auto deps = run_trace(s, 8.0, arr);
  // One packet starts transmission immediately, two are queued; two drop.
  EXPECT_EQ(deps.size(), 3u);
  EXPECT_EQ(s.drops(), 2u);
}

TEST(FlatSchedulers, PerFlowCapacityDropsTail) {
  core::Wf2qPlus s(8.0);
  s.add_flow(0, 4.0, /*capacity_packets=*/3);
  s.add_flow(1, 4.0);
  std::vector<TimedArrival> arr;
  for (int i = 0; i < 8; ++i) arr.push_back({0.0, packet(0, 1, i)});
  arr.push_back({0.0, packet(1, 1, 100)});
  const auto deps = run_trace(s, 8.0, arr);
  EXPECT_EQ(s.drops(0), 4u);  // 1 in service + 3 queued accepted
  EXPECT_EQ(deps.size(), 5u);
}

// --------------------------------------------------------------- DRR

TEST(Drr, DeficitCarriesAcrossRounds) {
  // Quantum smaller than a packet: flow still progresses, one packet per
  // several rounds, and bandwidth split stays proportional.
  sched::Drr s(8.0, /*frame_bits=*/8.0);  // quanta: 4 and 4 bits for equal flows
  s.add_flow(0, 4.0);
  s.add_flow(1, 4.0);
  std::vector<TimedArrival> arr;
  for (int i = 0; i < 20; ++i) {
    arr.push_back({0.0, packet(0, 1, 2 * i)});
    arr.push_back({0.0, packet(1, 1, 2 * i + 1)});
  }
  const auto deps = run_trace(s, 8.0, arr);
  ASSERT_EQ(deps.size(), 40u);
  // Alternation: each flow gets one packet every two slots.
  int count0 = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    if (deps[i].pkt.flow == 0) ++count0;
  }
  EXPECT_EQ(count0, 10);
}

// --------------------------------------------------------------- SCFQ/SFQ

TEST(Scfq, SelfClockResetsAfterIdle) {
  sched::Scfq s;
  s.add_flow(0, 4.0);
  s.add_flow(1, 4.0);
  std::vector<TimedArrival> arr = {
      {0.0, packet(0, 1, 0)},
      {10.0, packet(1, 1, 1)},  // new busy period
      {10.0, packet(0, 1, 2)},
  };
  const auto deps = run_trace(s, 8.0, arr);
  ASSERT_EQ(deps.size(), 3u);
  // After the idle gap both flows restart with equal tags; flow 1 enqueued
  // first wins the tie.
  EXPECT_EQ(deps[1].pkt.id, 1u);
  EXPECT_NEAR(deps[1].time, 11.0, 1e-9);
}

TEST(StartTimeFq, PicksSmallestStartTag) {
  sched::StartTimeFq s;
  s.add_flow(0, 7.0);   // large share → small finish increments
  s.add_flow(1, 1.0);
  std::vector<TimedArrival> arr;
  for (int i = 0; i < 4; ++i) arr.push_back({0.0, packet(0, 1, i)});
  arr.push_back({0.0, packet(1, 1, 10)});
  const auto deps = run_trace(s, 8.0, arr);
  ASSERT_EQ(deps.size(), 5u);
  // Both start at tag 0; flow 0 served first (FIFO tie), then flow 1's
  // packet (start 0) before flow 0's second (start = 8/7).
  EXPECT_EQ(deps[0].pkt.flow, 0u);
  EXPECT_EQ(deps[1].pkt.flow, 1u);
}

// ---------------------------------------------- property: random traffic

// Conservation + FIFO + work conservation on randomized traffic for every
// virtual-time scheduler.
template <typename MakeSched>
void random_traffic_property(MakeSched make, std::uint64_t seed) {
  util::Rng rng(seed);
  for (int trial = 0; trial < 8; ++trial) {
    auto s = make();
    std::vector<TimedArrival> arr;
    std::uint64_t id = 0;
    double t = 0.0;
    for (int i = 0; i < 300; ++i) {
      t += rng.uniform(0.0, 1.2);
      const auto f = static_cast<FlowId>(rng.uniform_int(0, 3));
      const auto bytes = static_cast<std::uint32_t>(rng.uniform_int(1, 12));
      arr.push_back({t, packet(f, bytes, id++)});
    }
    const auto deps = run_trace(*s, 8.0, arr);
    ASSERT_EQ(deps.size(), arr.size());
    // Per-flow FIFO.
    std::map<FlowId, std::uint64_t> last;
    for (const auto& d : deps) {
      if (last.count(d.pkt.flow) != 0) {
      EXPECT_LT(last[d.pkt.flow], d.pkt.id);
    }
      last[d.pkt.flow] = d.pkt.id;
    }
    // Work conservation: total transmission time == sum of packet times,
    // and no departure before its own arrival + transmission time.
    double total_bits = 0.0;
    for (const auto& a : arr) total_bits += a.pkt.size_bits();
    EXPECT_GE(deps.back().time, total_bits / 8.0 - 1e-6);
  }
}

TEST(RandomTrafficProperty, Wfq) {
  random_traffic_property(
      [] {
        auto s = std::make_unique<sched::Wfq>(8.0);
        for (FlowId f = 0; f < 4; ++f) s->add_flow(f, 2.0);
        return s;
      },
      1);
}
TEST(RandomTrafficProperty, Wf2q) {
  random_traffic_property(
      [] {
        auto s = std::make_unique<sched::Wf2q>(8.0);
        for (FlowId f = 0; f < 4; ++f) s->add_flow(f, 2.0);
        return s;
      },
      2);
}
TEST(RandomTrafficProperty, Wf2qPlus) {
  random_traffic_property(
      [] {
        auto s = std::make_unique<core::Wf2qPlus>(8.0);
        for (FlowId f = 0; f < 4; ++f) s->add_flow(f, 2.0);
        return s;
      },
      3);
}
TEST(RandomTrafficProperty, Scfq) {
  random_traffic_property(
      [] {
        auto s = std::make_unique<sched::Scfq>();
        for (FlowId f = 0; f < 4; ++f) s->add_flow(f, 2.0);
        return s;
      },
      4);
}
TEST(RandomTrafficProperty, StartTimeFq) {
  random_traffic_property(
      [] {
        auto s = std::make_unique<sched::StartTimeFq>();
        for (FlowId f = 0; f < 4; ++f) s->add_flow(f, 2.0);
        return s;
      },
      5);
}
TEST(RandomTrafficProperty, Drr) {
  random_traffic_property(
      [] {
        auto s = std::make_unique<sched::Drr>(8.0, 96.0);
        for (FlowId f = 0; f < 4; ++f) s->add_flow(f, 2.0);
        return s;
      },
      6);
}

}  // namespace
}  // namespace hfq
