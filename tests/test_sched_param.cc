// Parameterized invariants run against EVERY scheduler in the library
// (TEST_P / INSTANTIATE_TEST_SUITE_P): packet conservation, per-flow FIFO
// order, work conservation, busy-period throughput, and idle-recovery —
// the properties any packet scheduler must satisfy regardless of policy.
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/wf2qplus.h"
#include "harness.h"
#include "sched/approx_wfq.h"
#include "sched/drr.h"
#include "sched/fifo.h"
#include "sched/scfq.h"
#include "sched/sfq.h"
#include "sched/stochastic_fq.h"
#include "sched/virtual_clock.h"
#include "sched/wf2q.h"
#include "sched/wfq.h"
#include "sched/wrr.h"
#include "util/rng.h"

namespace hfq {
namespace {

using net::FlowId;
using net::Packet;
using testing::TimedArrival;
using testing::packet;
using testing::run_trace;

constexpr double kLinkRate = 8000.0;  // 1000-bit packets → 0.125 s
constexpr int kFlows = 4;

struct SchedulerCase {
  std::string name;
  // Builds a scheduler with kFlows flows of equal rate registered.
  std::function<std::unique_ptr<net::Scheduler>()> make;
  bool weighted = true;  // honours per-flow rates (FIFO/SFQ variants don't)
};

template <typename S, typename... Args>
std::unique_ptr<net::Scheduler> make_flat(Args... args) {
  auto s = std::make_unique<S>(args...);
  for (FlowId f = 0; f < kFlows; ++f) {
    s->add_flow(f, kLinkRate / kFlows);
  }
  return s;
}

std::vector<SchedulerCase> all_cases() {
  return {
      {"Fifo", [] { return std::make_unique<sched::Fifo>(); }, false},
      {"Wfq", [] { return make_flat<sched::Wfq>(kLinkRate); }, true},
      {"Wf2q", [] { return make_flat<sched::Wf2q>(kLinkRate); }, true},
      {"Wf2qPlus", [] { return make_flat<core::Wf2qPlus>(kLinkRate); }, true},
      {"ApproxWfq", [] { return make_flat<sched::ApproxWfq>(kLinkRate); },
       true},
      {"Scfq", [] { return make_flat<sched::Scfq>(); }, true},
      {"StartTimeFq", [] { return make_flat<sched::StartTimeFq>(); }, true},
      {"VirtualClock", [] { return make_flat<sched::VirtualClock>(); }, true},
      {"Drr", [] { return make_flat<sched::Drr>(kLinkRate, 8000.0); }, true},
      {"Wrr", [] { return make_flat<sched::Wrr>(kLinkRate / kFlows); }, true},
      {"StochasticFq",
       [] { return std::make_unique<sched::StochasticFq>(64); }, false},
  };
}

class AllSchedulers : public ::testing::TestWithParam<SchedulerCase> {};

INSTANTIATE_TEST_SUITE_P(
    Schedulers, AllSchedulers, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<SchedulerCase>& info) {
      return info.param.name;
    });

std::vector<TimedArrival> random_trace(std::uint64_t seed, int count,
                                       double max_gap, int max_bytes) {
  util::Rng rng(seed);
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += rng.uniform(0.0, max_gap);
    arr.push_back({t, packet(static_cast<FlowId>(rng.uniform_int(0, kFlows - 1)),
                             static_cast<std::uint32_t>(
                                 rng.uniform_int(1, max_bytes)),
                             id++)});
  }
  return arr;
}

TEST_P(AllSchedulers, DeliversEveryPacketExactlyOnce) {
  auto s = GetParam().make();
  const auto arr = random_trace(11, 400, 0.3, 200);
  const auto deps = run_trace(*s, kLinkRate, arr);
  ASSERT_EQ(deps.size(), arr.size());
  std::map<std::uint64_t, int> seen;
  for (const auto& d : deps) seen[d.pkt.id]++;
  for (const auto& [id, n] : seen) EXPECT_EQ(n, 1) << "packet " << id;
}

TEST_P(AllSchedulers, PerFlowFifoOrder) {
  auto s = GetParam().make();
  const auto arr = random_trace(23, 400, 0.3, 200);
  const auto deps = run_trace(*s, kLinkRate, arr);
  std::map<FlowId, std::uint64_t> last;
  for (const auto& d : deps) {
    if (last.count(d.pkt.flow) != 0) {
      EXPECT_LT(last[d.pkt.flow], d.pkt.id);
    }
    last[d.pkt.flow] = d.pkt.id;
  }
}

TEST_P(AllSchedulers, WorkConservingWhenSaturated) {
  // All packets at t=0: departures must be back-to-back with no idle gaps.
  auto s = GetParam().make();
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 25; ++k) {
    for (FlowId f = 0; f < kFlows; ++f) {
      arr.push_back({0.0, packet(f, 125, id++)});
    }
  }
  const auto deps = run_trace(*s, kLinkRate, arr);
  ASSERT_EQ(deps.size(), arr.size());
  for (std::size_t i = 0; i < deps.size(); ++i) {
    EXPECT_NEAR(deps[i].time, 0.125 * static_cast<double>(i + 1), 1e-9);
  }
}

TEST_P(AllSchedulers, RecoversAcrossIdlePeriods) {
  auto s = GetParam().make();
  std::vector<TimedArrival> arr = {
      {0.0, packet(0, 125, 1)},
      {5.0, packet(1, 125, 2)},
      {10.0, packet(2, 125, 3)},
      {10.0, packet(3, 125, 4)},
  };
  const auto deps = run_trace(*s, kLinkRate, arr);
  ASSERT_EQ(deps.size(), 4u);
  EXPECT_NEAR(deps[0].time, 0.125, 1e-9);
  EXPECT_NEAR(deps[1].time, 5.125, 1e-9);
  EXPECT_NEAR(deps[2].time, 10.125, 1e-9);
  EXPECT_NEAR(deps[3].time, 10.250, 1e-9);
}

TEST_P(AllSchedulers, EqualWeightFlowsShareEqually) {
  if (!GetParam().weighted) GTEST_SKIP() << "unweighted scheduler";
  auto s = GetParam().make();
  // Everyone continuously backlogged with equal-size packets.
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 200; ++k) {
    for (FlowId f = 0; f < kFlows; ++f) {
      arr.push_back({0.0, packet(f, 125, id++)});
    }
  }
  const auto deps = run_trace(*s, kLinkRate, arr);
  const double horizon = 60.0;
  std::map<FlowId, int> count;
  for (const auto& d : deps) {
    if (d.time <= horizon) count[d.pkt.flow]++;
  }
  const int expected = static_cast<int>(horizon / 0.125) / kFlows;
  for (FlowId f = 0; f < kFlows; ++f) {
    EXPECT_NEAR(count[f], expected, 12) << "flow " << f;
  }
}

TEST_P(AllSchedulers, SingleFlowGetsFullLink) {
  auto s = GetParam().make();
  std::vector<TimedArrival> arr;
  for (int k = 0; k < 50; ++k) {
    arr.push_back({0.0, packet(0, 125, static_cast<std::uint64_t>(k))});
  }
  const auto deps = run_trace(*s, kLinkRate, arr);
  ASSERT_EQ(deps.size(), 50u);
  EXPECT_NEAR(deps.back().time, 50 * 0.125, 1e-9);
}

}  // namespace
}  // namespace hfq
