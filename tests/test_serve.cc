// Tests for the long-lived scheduler service (src/serve/): the lock-free
// MPSC ingress ring (wraparound, full-ring drop accounting, multi-producer
// ordering — run under TSan in CI), consistent-hash shard mapping (restart
// stability, bounded remap on resize, startup rejection of bad shard
// counts), the live-edit batch grammar, live re-weights on the SoA WF²Q+
// schedulers (splice validation + post-edit WFI within the per-node bound),
// and the service end-to-end (conservation identity across live edits).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/tree_parser.h"
#include "core/wf2qplus.h"
#include "core/wf2qplus_fixed.h"
#include "net/packet.h"
#include "runner/scenario.h"
#include "serve/edits.h"
#include "serve/harness.h"
#include "serve/load_gen.h"
#include "serve/mpsc_ring.h"
#include "serve/service.h"
#include "serve/shard_map.h"
#include "stats/wfi_estimator.h"
#include "harness.h"

namespace hfq {
namespace {

using net::FlowId;
using net::Packet;
using testing::packet;

// ---------------------------------------------------------------------------
// MpscRing: single-consumer FIFO with wraparound and drop accounting.

TEST(MpscRing, FifoAcrossManyWraparounds) {
  serve::MpscRing ring(8);
  std::vector<Packet> out;
  std::uint64_t next_id = 0;
  std::uint64_t expect = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ring.try_push(packet(0, 100, next_id++)));
    }
    out.clear();
    ASSERT_EQ(ring.pop_burst(out, 16), 5u);
    for (const Packet& p : out) EXPECT_EQ(p.id, expect++);
  }
  EXPECT_EQ(ring.drops(), 0u);
}

TEST(MpscRing, FullRingDropsAreCountedAndOrderSurvives) {
  serve::MpscRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_push(packet(0, 100, i)));
  }
  // Ring full: pushes fail and are counted, contents are untouched.
  EXPECT_FALSE(ring.try_push(packet(0, 100, 99)));
  EXPECT_FALSE(ring.try_push(packet(0, 100, 100)));
  EXPECT_EQ(ring.drops(), 2u);
  std::vector<Packet> out;
  EXPECT_EQ(ring.pop_burst(out, 16), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].id, i);
  // Freed capacity is usable again.
  EXPECT_TRUE(ring.try_push(packet(0, 100, 4)));
  out.clear();
  EXPECT_EQ(ring.pop_burst(out, 16), 1u);
  EXPECT_EQ(out[0].id, 4u);
  EXPECT_EQ(ring.drops(), 2u);
}

// The sequence counters are unsigned and every comparison is a modular
// difference, so operation must be identical when head/tail/slot sequences
// straddle UINT64_MAX. Mirrors the `ring-wrap` model-check scenario
// (hfq_verify) as a plain unit test: counters start 3 claims short of
// overflow and keep going well past it.
TEST(MpscRing, SeqCountersWrapAtUint64Max) {
  serve::MpscRing ring(4, ~std::uint64_t{0} - 2);
  std::vector<Packet> out;
  std::uint64_t next_id = 0;
  std::uint64_t expect = 0;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_push(packet(0, 100, next_id++)));
    }
    EXPECT_EQ(ring.approx_size(), 3u) << "approx_size broken across wrap";
    out.clear();
    ASSERT_EQ(ring.pop_burst(out, 16), 3u);
    for (const Packet& p : out) EXPECT_EQ(p.id, expect++);
  }
  // Full-ring detection (the dif < 0 branch) also works mid-wrap.
  serve::MpscRing full(4, ~std::uint64_t{0} - 1);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(full.try_push(packet(0, 100, i)));
  }
  EXPECT_FALSE(full.try_push(packet(0, 100, 99)));
  EXPECT_EQ(full.drops(), 1u);
  out.clear();
  EXPECT_EQ(full.pop_burst(out, 16), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].id, i);
}

// Multi-producer / single-consumer stress: per-producer ids must arrive in
// their emission order at the consumer, and every packet is either popped
// or counted as a drop. TSan CI runs this test to certify the ring's
// synchronization.
TEST(MpscRing, PerProducerOrderUnderConcurrencyAndEverythingAccounted) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  serve::MpscRing ring(1 << 10);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> pushed{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::uint64_t ok = 0;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // flow = producer, id = emission sequence within the producer.
        if (ring.try_push(packet(static_cast<FlowId>(p), 64, i))) ++ok;
      }
      pushed.fetch_add(ok);
    });
  }

  std::vector<std::vector<std::uint64_t>> seen(kProducers);
  std::uint64_t popped = 0;
  std::vector<Packet> buf;
  std::thread consumer([&] {
    for (;;) {
      buf.clear();
      const std::size_t n = ring.pop_burst(buf, 256);
      for (std::size_t i = 0; i < n; ++i) {
        seen[buf[i].flow].push_back(buf[i].id);
      }
      popped += n;
      if (n == 0) {
        if (done.load(std::memory_order_acquire)) {
          buf.clear();
          popped += ring.pop_burst(buf, 1 << 10);
          for (const Packet& p : buf) seen[p.flow].push_back(p.id);
          if (ring.approx_size() == 0) return;
        } else {
          std::this_thread::yield();
        }
      }
    }
  });
  for (std::thread& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(popped, pushed.load());
  EXPECT_EQ(pushed.load() + ring.drops(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_TRUE(std::is_sorted(seen[p].begin(), seen[p].end()))
        << "producer " << p << " order violated";
    EXPECT_TRUE(std::adjacent_find(seen[p].begin(), seen[p].end()) ==
                seen[p].end())
        << "producer " << p << " duplicated a packet";
  }
}

// ---------------------------------------------------------------------------
// Consistent-hash shard map.

TEST(ShardMap, DeterministicAcrossRestartsAndInRange) {
  // Stateless jump hash: the mapping is a pure function of (flow, shards),
  // so a service restart with the same shard count remaps nothing.
  for (FlowId f = 0; f < 5000; ++f) {
    const std::uint32_t s = serve::shard_of(f, 7);
    EXPECT_LT(s, 7u);
    EXPECT_EQ(s, serve::shard_of(f, 7)) << "flow " << f;
  }
}

TEST(ShardMap, ResizeMovesOnlyTheConsistentHashFraction) {
  // Growing from S to S+1 shards should move ~1/(S+1) of flows; a modulo
  // hash would move ~S/(S+1). Assert well under the modulo level.
  constexpr int kFlows = 20000;
  int moved = 0;
  for (FlowId f = 0; f < kFlows; ++f) {
    if (serve::shard_of(f, 4) != serve::shard_of(f, 5)) ++moved;
  }
  const double frac = static_cast<double>(moved) / kFlows;
  EXPECT_GT(frac, 0.10);  // some flows must move to use the new shard
  EXPECT_LT(frac, 0.30);  // expected 0.20; modulo would be 0.80
}

TEST(ShardMap, SpreadsFlowsRoughlyEvenly) {
  constexpr int kFlows = 40000;
  constexpr std::size_t kShards = 8;
  std::vector<int> count(kShards, 0);
  for (FlowId f = 0; f < kFlows; ++f) ++count[serve::shard_of(f, kShards)];
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(count[s], kFlows / kShards / 2) << "shard " << s;
    EXPECT_LT(count[s], kFlows / kShards * 2) << "shard " << s;
  }
}

// Remap stability while a shard-count bump is published concurrently:
// mirrors the `shard-map` model-check scenario (hfq_verify) with real
// threads. The control thread initializes a new shard's directory slot and
// release-publishes the grown count; readers acquire-load the count and
// must (a) always route inside it, (b) always land on an initialized
// directory slot, and (c) never see a flow move between PRE-EXISTING
// shards — jump hashing moves flows only onto the new shard.
TEST(ShardMap, RemapStaysStableUnderConcurrentLookupDuringEpochEdit) {
  constexpr std::uint32_t kFrom = 4;
  constexpr std::uint32_t kTo = 5;
  constexpr FlowId kFlows = 512;
  std::array<std::atomic<std::uint32_t>, kTo> dir{};
  for (std::uint32_t s = 0; s < kFrom; ++s) dir[s].store(s + 1);
  std::atomic<std::uint32_t> nshards{kFrom};
  std::atomic<bool> go{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int round = 0; round < 2000; ++round) {
        const std::uint32_t n = nshards.load(std::memory_order_acquire);
        for (FlowId f = 0; f < kFlows; f += 37) {
          const std::uint32_t s = serve::shard_of(f, n);
          if (s >= n) violations.fetch_add(1);
          if (dir[s].load(std::memory_order_relaxed) != s + 1) {
            violations.fetch_add(1);  // routed to an uninitialized shard
          }
          const std::uint32_t before = serve::shard_of(f, kFrom);
          const std::uint32_t after = serve::shard_of(f, kTo);
          if (after != before && after != kTo - 1) violations.fetch_add(1);
        }
      }
    });
  }
  std::thread control([&] {
    go.store(true, std::memory_order_release);
    std::this_thread::yield();
    dir[kTo - 1].store(kTo, std::memory_order_relaxed);
    nshards.store(kTo, std::memory_order_release);
  });
  control.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(ShardMap, RejectsZeroAndOverLargeShardCounts) {
  EXPECT_THROW(serve::validate_shard_count(0), std::invalid_argument);
  EXPECT_THROW(serve::validate_shard_count(
                   static_cast<std::size_t>(net::kMaxFlows) + 1),
               std::invalid_argument);
  EXPECT_NO_THROW(serve::validate_shard_count(1));
  EXPECT_NO_THROW(serve::validate_shard_count(64));
}

TEST(ShardMap, ServiceConstructorRejectsBadShardCount) {
  const core::Hierarchy tree =
      core::parse_hierarchy("link 8M\ns0 4M flow=0\ns1 4M flow=1\n");
  serve::ServiceConfig cfg;
  cfg.num_shards = 0;
  EXPECT_THROW(serve::Service(tree, cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Edit-batch grammar.

TEST(ParseEdits, UpsertRemoveCommentsAndAttributes) {
  const auto ops = serve::parse_edits(
      "# re-weight and add\n"
      "s0 4M            # known name -> re-weight\n"
      "snew 500k flow=9 cap=32\n"
      "remove s1\n");
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].kind, serve::EditOp::Kind::kUpsert);
  EXPECT_EQ(ops[0].name, "s0");
  EXPECT_DOUBLE_EQ(ops[0].rate_bps, 4e6);
  EXPECT_FALSE(ops[0].has_flow);
  EXPECT_EQ(ops[1].kind, serve::EditOp::Kind::kUpsert);
  EXPECT_TRUE(ops[1].has_flow);
  EXPECT_EQ(ops[1].flow, 9u);
  EXPECT_EQ(ops[1].capacity_packets, 32u);
  EXPECT_DOUBLE_EQ(ops[1].rate_bps, 5e5);
  EXPECT_EQ(ops[2].kind, serve::EditOp::Kind::kRemove);
  EXPECT_EQ(ops[2].name, "s1");
}

TEST(ParseEdits, RejectsMalformedLines) {
  EXPECT_THROW(serve::parse_edits("s0\n"), std::runtime_error);
  EXPECT_THROW(serve::parse_edits("s0 -4M\n"), std::runtime_error);
  EXPECT_THROW(serve::parse_edits("remove\n"), std::runtime_error);
  EXPECT_THROW(serve::parse_edits("s0 4M bogus=1\n"), std::runtime_error);
  EXPECT_THROW(serve::parse_edits("s0 4Q\n"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Live edits on the SoA schedulers: splice validation and the fairness
// bound after a mid-backlog re-weight.

template <typename Sched>
void reweight_splice_holds() {
  Sched s(8000);
  s.add_flow(0, 6000.0);
  s.add_flow(1, 2000.0);
  ASSERT_TRUE(s.supports_live_edits());

  // Backlog both flows, serve a few packets, then swap the weights.
  double now = 0.0;
  std::uint64_t id = 0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(s.enqueue(packet(0, 100, id++), now));
    ASSERT_TRUE(s.enqueue(packet(1, 100, id++), now));
  }
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(s.dequeue(now).has_value());

  ASSERT_TRUE(s.live_set_rate(0, 2000.0));
  ASSERT_TRUE(s.live_set_rate(1, 6000.0));
  s.commit_live_edits();
  std::string why;
  EXPECT_TRUE(s.validate_splice(&why)) << why;

  // Every queued packet still comes out, per-flow FIFO intact.
  std::map<FlowId, std::uint64_t> last;
  std::size_t remaining = 0;
  while (auto p = s.dequeue(now)) {
    auto it = last.find(p->flow);
    if (it != last.end()) EXPECT_GT(p->id, it->second);
    last[p->flow] = p->id;
    ++remaining;
  }
  EXPECT_EQ(remaining, 32u);
  EXPECT_EQ(s.backlog_packets(), 0u);
}

TEST(LiveEdits, ReweightSpliceHoldsFloat) {
  reweight_splice_holds<core::Wf2qPlus>();
}
TEST(LiveEdits, ReweightSpliceHoldsFixed) {
  reweight_splice_holds<core::Wf2qPlusFixed>();
}

TEST(LiveEdits, AddAndRemoveFlowsMidStream) {
  core::Wf2qPlus s(8000.0);
  s.add_flow(0, 4000.0);
  s.add_flow(1, 4000.0);
  std::uint64_t id = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(s.enqueue(packet(0, 100, id++), 0.0));
    ASSERT_TRUE(s.enqueue(packet(1, 100, id++), 0.0));
  }
  // Remove a backlogged flow: its queue drains into the drop counter.
  std::uint64_t dropped = 0;
  ASSERT_TRUE(s.live_remove_flow(1, &dropped));
  // Add a new flow in the same batch.
  ASSERT_TRUE(s.live_add_flow(7, 4000.0, 0));
  s.commit_live_edits();
  std::string why;
  EXPECT_TRUE(s.validate_splice(&why)) << why;
  EXPECT_EQ(dropped, 10u);
  EXPECT_EQ(s.backlog_packets(), 10u);
  ASSERT_TRUE(s.enqueue(packet(7, 100, id++), 0.0));
  std::set<FlowId> served;
  while (auto p = s.dequeue(0.0)) served.insert(p->flow);
  EXPECT_TRUE(served.count(0));
  EXPECT_TRUE(served.count(7));
  EXPECT_FALSE(served.count(1));
  // Double-commit and edits on unknown flows are rejected, not fatal.
  EXPECT_FALSE(s.live_set_rate(1, 1000.0));
  EXPECT_FALSE(s.live_remove_flow(42, &dropped));
}

// After a live re-weight the scheduler must honor the NEW share at the
// WF²Q+ per-node fairness bound: B-WFI <= L_max for the re-weighted flow,
// measured from the splice onward (the paper's Definition 2, measured by
// the same estimator src/audit-style checks use).
TEST(LiveEdits, PostEditWfiWithinPerNodeBound) {
  constexpr double kLinkBps = 8000.0;
  constexpr std::uint32_t kBytes = 100;  // L_max = 800 bits
  core::Wf2qPlus s(kLinkBps);
  s.add_flow(0, 6000.0);
  s.add_flow(1, 2000.0);
  std::uint64_t id = 0;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(s.enqueue(packet(0, kBytes, id++), 0.0));
    ASSERT_TRUE(s.enqueue(packet(1, kBytes, id++), 0.0));
  }
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(s.dequeue(0.0).has_value());

  // Swap the weights: flow 1 now owns 6/8 of the link.
  ASSERT_TRUE(s.live_set_rate(0, 2000.0));
  ASSERT_TRUE(s.live_set_rate(1, 6000.0));
  s.commit_live_edits();
  std::string why;
  ASSERT_TRUE(s.validate_splice(&why)) << why;

  stats::WfiEstimator wfi(6000.0 / kLinkBps);
  wfi.backlog_start();
  while (auto p = s.dequeue(0.0)) {
    const double bits = p->size_bits();
    wfi.on_server_departure(bits, p->flow == 1 ? bits : 0.0);
    if (s.queue_length(1) == 0) break;  // flow 1's backlogged period ends
  }
  wfi.backlog_end();
  EXPECT_LE(wfi.bwfi_bits(), 8.0 * kBytes + 1e-6);
  EXPECT_GT(wfi.bwfi_bits(), 0.0);
}

// ---------------------------------------------------------------------------
// Service end-to-end: conservation across live edits.

TEST(Service, RoutesByConsistentHashAndAggregatesTotals) {
  const core::Hierarchy tree = core::parse_hierarchy(
      "link 80M\ns0 20M flow=0\ns1 20M flow=1\ns2 20M flow=2\ns3 20M flow=3\n");
  serve::ServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.paced = false;  // bench mode: no wall-clock pacing in unit tests
  serve::Service svc(tree, cfg);
  EXPECT_TRUE(svc.supports_live_edits());
  EXPECT_EQ(svc.sessions().size(), 4u);

  svc.start();
  std::uint64_t offered = 0;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    const Packet p = packet(static_cast<FlowId>(i % 4), 1000, i);
    (void)svc.submit(p);  // a full ring is a counted drop, not a loss
    ++offered;
  }
  svc.stop();
  const serve::Service::Totals t = svc.totals();
  EXPECT_EQ(offered, t.delivered + t.backlog + t.sched_drops + t.edit_drops +
                         t.ring_drops);
  EXPECT_EQ(t.faulted_shards, 0u);
  EXPECT_EQ(t.audit_violations, 0u);
}

TEST(Service, ConservationHoldsAcrossLiveEdits) {
  std::ostringstream tree_text;
  tree_text << "link 100M\n";
  for (int f = 0; f < 64; ++f) {
    tree_text << "s" << f << " " << (100e6 / 64) << " flow=" << f << "\n";
  }
  runner::Scenario sc;
  sc.tree_text = tree_text.str();
  sc.scheduler = "wf2q+";
  sc.traffic = "poisson";
  sc.load = 0.8;
  sc.duration_s = 0.4;
  sc.packet_bytes = 400;
  sc.seed = 11;

  runner::ServeSpec serve_spec;
  serve_spec.shards = 4;
  serve_spec.producers = 2;
  serve_spec.ring_capacity = 1 << 12;
  serve_spec.paced = true;
  serve_spec.edits.push_back({0.1, "s0 3M\ns1 500k\n"});
  serve_spec.edits.push_back({0.2, "remove s2\nsx 2M flow=200\n"});

  const serve::ServeRunResult r =
      serve::run_serve_scenario(sc, serve_spec, nullptr);
  EXPECT_TRUE(r.conservation_ok) << r.summary();
  EXPECT_EQ(r.edit_batches, 2u);
  EXPECT_EQ(r.faulted_shards, 0u);
  EXPECT_EQ(r.splice_failures, 0u);
  EXPECT_GT(r.delivered, 0u);
}

TEST(Service, EditTextErrorsAreReported) {
  const core::Hierarchy tree =
      core::parse_hierarchy("link 8M\ns0 4M flow=0\ns1 4M flow=1\n");
  serve::ServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.paced = false;
  serve::Service svc(tree, cfg);
  svc.start();
  // Unknown name without flow= cannot be an add.
  EXPECT_THROW(svc.apply_edit_text("nosuch 1M\n"), std::runtime_error);
  // Re-binding a known session to a different flow id is refused.
  EXPECT_THROW(svc.apply_edit_text("s0 1M flow=5\n"), std::runtime_error);
  // Removing an unknown session is refused.
  EXPECT_THROW(svc.apply_edit_text("remove ghost\n"), std::runtime_error);
  // A valid re-weight still works after the failures.
  EXPECT_NO_THROW(svc.apply_edit_text("s0 6M\ns1 2M\n"));
  svc.stop();
}

TEST(Service, HierarchicalSchedulersRefuseLiveEdits) {
  const core::Hierarchy tree =
      core::parse_hierarchy("link 8M\ns0 4M flow=0\ns1 4M flow=1\n");
  serve::ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.scheduler = "hwf2q+";
  cfg.paced = false;
  serve::Service svc(tree, cfg);
  EXPECT_FALSE(svc.supports_live_edits());
  svc.start();
  EXPECT_THROW(svc.apply_edit_text("s0 6M\n"), std::runtime_error);
  svc.stop();
}

// Campaign-file round trip for the serve-* directives.
TEST(ServeSpec, DirectivesParseAndEditsSortByTime) {
  std::istringstream in(
      "campaign c\nschedulers wf2q+\ntree t fanout=4 depth=1\n"
      "serve-shards 8\nserve-producers 3\nserve-ring-bits 10\n"
      "serve-paced 0\nserve-horizon-us 250\n"
      "serve-edit 2.0 {\n  s0 9M\n}\n"
      "serve-edit 1.0 {\n  s1 1M\n}\n");
  const runner::CampaignSpec spec = runner::parse_campaign(in);
  EXPECT_EQ(spec.serve.shards, 8u);
  EXPECT_EQ(spec.serve.producers, 3u);
  EXPECT_EQ(spec.serve.ring_capacity, 1u << 10);
  EXPECT_FALSE(spec.serve.paced);
  EXPECT_DOUBLE_EQ(spec.serve.horizon_us, 250.0);
  ASSERT_EQ(spec.serve.edits.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.serve.edits[0].at_s, 1.0);
  EXPECT_NE(spec.serve.edits[0].text.find("s1 1M"), std::string::npos);
  EXPECT_DOUBLE_EQ(spec.serve.edits[1].at_s, 2.0);
}

}  // namespace
}  // namespace hfq
