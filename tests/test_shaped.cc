// Tests for the rate-cap decorator (qos/shaped_scheduler): capped flows
// never exceed their ceiling even when the link is idle, uncapped flows are
// untouched, and the work-conserving inner scheduler still fills the link
// with whatever the shapers admit.
#include <map>

#include <gtest/gtest.h>

#include "core/wf2qplus.h"
#include "harness.h"
#include "qos/shaped_scheduler.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "traffic/cbr.h"

namespace hfq::qos {
namespace {

using hfq::testing::packet;
using net::FlowId;
using net::Packet;

struct Rig {
  sim::Simulator sim;
  core::Wf2qPlus inner;
  ShapedScheduler shaped;
  sim::Link link;
  std::map<FlowId, double> bits;

  Rig()
      : inner(8000.0), shaped(sim, inner), link(sim, shaped, 8000.0) {
    inner.add_flow(0, 4000.0);
    inner.add_flow(1, 4000.0);
    shaped.set_idle_notify([this] { link.poke(); });
    link.set_delivery([this](const Packet& p, net::Time) {
      bits[p.flow] += p.size_bits();
    });
  }
};

TEST(ShapedScheduler, CapHoldsEvenOnIdleLink) {
  Rig rig;
  rig.shaped.cap_flow(0, /*sigma=*/1000.0, /*rho=*/1000.0);
  // Flow 0 alone offers far more than its 1000 bps cap; link is otherwise
  // idle — without the cap it would get all 8000 bps.
  traffic::CbrSource src(rig.sim,
                         [&rig](Packet p) { return rig.link.submit(p); }, 0,
                         125, 8000.0);
  src.start(0.0, 10.0);
  // The shaper delays rather than drops, so measure within the window (a
  // full run() would drain the held packets eventually).
  rig.sim.run_until(10.0);
  // Served ≈ sigma + rho * 10 s = 1000 + 10000 bits.
  EXPECT_LE(rig.bits[0], 11000.0 + 1000.0 + 1e-6);
  EXPECT_GE(rig.bits[0], 10000.0);
}

TEST(ShapedScheduler, UncappedFlowPassesThrough) {
  Rig rig;
  rig.shaped.cap_flow(0, 1000.0, 1000.0);
  traffic::CbrSource capped(rig.sim,
                            [&rig](Packet p) { return rig.link.submit(p); },
                            0, 125, 8000.0);
  traffic::CbrSource free_flow(rig.sim,
                               [&rig](Packet p) { return rig.link.submit(p); },
                               1, 125, 8000.0);
  capped.start(0.0, 10.0);
  free_flow.start(0.0, 10.0);
  rig.sim.run_until(10.0);
  // Flow 1 absorbs everything the cap denies flow 0.
  EXPECT_LE(rig.bits[0], 12000.0);
  EXPECT_GE(rig.bits[1], 8000.0 * 10.0 - rig.bits[0] - 2000.0);
}

TEST(ShapedScheduler, CapAboveOfferedRateIsInvisible) {
  Rig rig;
  rig.shaped.cap_flow(0, 8000.0, 6000.0);
  traffic::CbrSource src(rig.sim,
                         [&rig](Packet p) { return rig.link.submit(p); }, 0,
                         125, 2000.0);  // offers less than the cap
  src.start(0.0, 10.0);
  rig.sim.run();
  EXPECT_NEAR(rig.bits[0], 2000.0 * 10.0, 1500.0);
}

TEST(ShapedScheduler, BacklogReflectsInnerScheduler) {
  // No link here: drive the decorator directly.
  sim::Simulator sim;
  core::Wf2qPlus inner(8000.0);
  inner.add_flow(0, 4000.0);
  ShapedScheduler shaped(sim, inner);
  shaped.cap_flow(0, 1000.0, 100.0);
  // Two packets: the first conforms (full bucket) and lands in the inner
  // scheduler; the second is held by the shaper — NOT yet backlog.
  EXPECT_TRUE(shaped.enqueue(packet(0, 125, 1), 0.0));
  EXPECT_TRUE(shaped.enqueue(packet(0, 125, 2), 0.0));
  EXPECT_EQ(shaped.backlog_packets(), 1u);
  // Once the shaper releases it (10 s at 100 bps), it appears.
  sim.run_until(11.0);
  EXPECT_EQ(shaped.backlog_packets(), 2u);
}

}  // namespace
}  // namespace hfq::qos
