// Tests for the discrete-event kernel (src/sim) and the Link component.
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "net/packet.h"
#include "sched/fifo.h"
#include "sim/link.h"
#include "sim/simulator.h"

namespace hfq::sim {
namespace {

net::Packet make_pkt(net::FlowId flow, std::uint32_t bytes,
                     std::uint64_t id = 0) {
  net::Packet p;
  p.id = id;
  p.flow = flow;
  p.size_bytes = bytes;
  return p;
}

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(2.0, [&] { order.push_back(2); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.at(1.0, [&] {
    sim.after(0.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  sim.cancel(id);
  EXPECT_FALSE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<double> fired;
  sim.at(1.0, [&] { fired.push_back(1.0); });
  sim.at(2.0, [&] { fired.push_back(2.0); });
  sim.at(5.0, [&] { fired.push_back(5.0); });
  sim.run_until(3.0);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulator, EventsScheduledDuringRunAreExecuted) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sim.after(1.0, chain);
  };
  sim.at(0.0, chain);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
  EXPECT_EQ(sim.events_executed(), 10u);
}

// ----------------------------------------------------------------- Link

TEST(Link, TransmitsAtConfiguredRate) {
  Simulator sim;
  sched::Fifo fifo;
  Link link(sim, fifo, /*rate_bps=*/8000.0);  // 1000 bytes/sec
  std::vector<double> departures;
  link.set_delivery([&](const net::Packet&, Time t) { departures.push_back(t); });
  sim.at(0.0, [&] { link.submit(make_pkt(0, 500)); });  // 0.5 s to transmit
  sim.run();
  ASSERT_EQ(departures.size(), 1u);
  EXPECT_DOUBLE_EQ(departures[0], 0.5);
}

TEST(Link, SerializesBackToBackPackets) {
  Simulator sim;
  sched::Fifo fifo;
  Link link(sim, fifo, 8000.0);
  std::vector<double> departures;
  link.set_delivery([&](const net::Packet&, Time t) { departures.push_back(t); });
  sim.at(0.0, [&] {
    link.submit(make_pkt(0, 1000));
    link.submit(make_pkt(0, 1000));
    link.submit(make_pkt(0, 1000));
  });
  sim.run();
  ASSERT_EQ(departures.size(), 3u);
  EXPECT_DOUBLE_EQ(departures[0], 1.0);
  EXPECT_DOUBLE_EQ(departures[1], 2.0);
  EXPECT_DOUBLE_EQ(departures[2], 3.0);
}

TEST(Link, IdlePeriodThenResume) {
  Simulator sim;
  sched::Fifo fifo;
  Link link(sim, fifo, 8000.0);
  std::vector<double> departures;
  link.set_delivery([&](const net::Packet&, Time t) { departures.push_back(t); });
  sim.at(0.0, [&] { link.submit(make_pkt(0, 1000)); });
  sim.at(5.0, [&] { link.submit(make_pkt(0, 1000)); });
  sim.run();
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_DOUBLE_EQ(departures[0], 1.0);
  EXPECT_DOUBLE_EQ(departures[1], 6.0);
  EXPECT_FALSE(link.busy());
  EXPECT_EQ(link.packets_sent(), 2u);
}

TEST(Link, UtilizationAccountsBitsSent) {
  Simulator sim;
  sched::Fifo fifo;
  Link link(sim, fifo, 8000.0);
  link.set_delivery([](const net::Packet&, Time) {});
  sim.at(0.0, [&] { link.submit(make_pkt(0, 1000)); });
  sim.run();
  sim.run_until(2.0);
  EXPECT_DOUBLE_EQ(link.bits_sent(), 8000.0);
  EXPECT_DOUBLE_EQ(link.utilization(2.0), 0.5);
}

TEST(Link, ArrivalDuringTransmissionWaits) {
  Simulator sim;
  sched::Fifo fifo;
  Link link(sim, fifo, 8000.0);
  std::vector<double> departures;
  link.set_delivery([&](const net::Packet&, Time t) { departures.push_back(t); });
  sim.at(0.0, [&] { link.submit(make_pkt(0, 1000)); });
  sim.at(0.25, [&] { link.submit(make_pkt(1, 1000)); });
  sim.run();
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_DOUBLE_EQ(departures[0], 1.0);
  EXPECT_DOUBLE_EQ(departures[1], 2.0);
}

TEST(Link, DeliveryCallbackMaySubmitMorePackets) {
  Simulator sim;
  sched::Fifo fifo;
  Link link(sim, fifo, 8000.0);
  int delivered = 0;
  link.set_delivery([&](const net::Packet&, Time) {
    if (++delivered < 3) link.submit(make_pkt(0, 1000));
  });
  sim.at(0.0, [&] { link.submit(make_pkt(0, 1000)); });
  sim.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

}  // namespace
}  // namespace hfq::sim
