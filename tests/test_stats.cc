// Tests for the measurement module (src/stats).
#include <gtest/gtest.h>

#include "net/packet.h"
#include "stats/delay_recorder.h"
#include "stats/fairness.h"
#include "stats/histogram.h"
#include "stats/quantile.h"
#include "stats/rate_estimator.h"
#include "stats/service_curve.h"
#include "stats/wfi_estimator.h"
#include "util/rng.h"

namespace hfq::stats {
namespace {

net::Packet arrived_at(double t) {
  net::Packet p;
  p.size_bytes = 100;
  p.arrival = t;
  return p;
}

// ---------------------------------------------------------- DelayRecorder

TEST(DelayRecorder, TracksMaxMeanCount) {
  DelayRecorder r;
  r.record(arrived_at(0.0), 1.0);
  r.record(arrived_at(1.0), 4.0);
  r.record(arrived_at(2.0), 2.5);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_DOUBLE_EQ(r.max_delay(), 3.0);
  EXPECT_NEAR(r.mean_delay(), (1.0 + 3.0 + 0.5) / 3.0, 1e-12);
}

TEST(DelayRecorder, PercentileNearestRank) {
  DelayRecorder r;
  for (int i = 1; i <= 100; ++i) {
    r.record(arrived_at(0.0), static_cast<double>(i));
  }
  EXPECT_NEAR(r.percentile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(r.percentile(100.0), 100.0, 1e-12);
  EXPECT_NEAR(r.percentile(50.0), 50.0, 1.0);
  EXPECT_NEAR(r.percentile(99.0), 99.0, 1.0);
}

TEST(DelayRecorder, ClearResets) {
  DelayRecorder r;
  r.record(arrived_at(0.0), 1.0);
  r.clear();
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.max_delay(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_delay(), 0.0);
}

// ---------------------------------------------------------- RateEstimator

TEST(RateEstimator, ConstantRateConvergesToTruth) {
  RateEstimator e(0.050, 0.3);
  // 1000 bits every 10 ms = 100 kbps.
  for (int i = 0; i < 400; ++i) {
    e.on_delivery(0.010 * i, 1000.0);
  }
  e.flush(4.0);
  EXPECT_NEAR(e.current_rate_bps(), 100000.0, 1500.0);
}

TEST(RateEstimator, SeriesHasOneSamplePerWindow) {
  RateEstimator e(0.050);
  e.on_delivery(0.01, 500.0);
  e.flush(0.500001);
  EXPECT_EQ(e.series().size(), 10u);
  EXPECT_NEAR(e.series()[0].when, 0.050, 1e-12);
  EXPECT_NEAR(e.series()[9].when, 0.500, 1e-9);
}

TEST(RateEstimator, DecaysToZeroAfterTrafficStops) {
  RateEstimator e(0.050, 0.3);
  for (int i = 0; i < 100; ++i) e.on_delivery(0.010 * i, 1000.0);
  const double peak = e.current_rate_bps();
  e.flush(10.0);
  EXPECT_LT(e.current_rate_bps(), 0.01 * peak);
}

// ----------------------------------------------------------- ServiceCurve

TEST(ServiceCurve, TracksBacklogAndLag) {
  ServiceCurve c;
  c.on_arrival(0.0);
  c.on_arrival(0.1);
  c.on_arrival(0.2);
  EXPECT_DOUBLE_EQ(c.backlog(), 3.0);
  c.on_service(0.5);
  EXPECT_DOUBLE_EQ(c.backlog(), 2.0);
  EXPECT_DOUBLE_EQ(c.max_lag(), 2.0);
  c.on_service(0.6);
  c.on_service(0.7);
  EXPECT_DOUBLE_EQ(c.backlog(), 0.0);
  EXPECT_DOUBLE_EQ(c.max_lag(), 2.0);
}

TEST(ServiceCurve, ServedByQueriesStepFunction) {
  ServiceCurve c;
  c.on_arrival(0.0, 10.0);
  c.on_service(1.0, 4.0);
  c.on_service(2.0, 6.0);
  EXPECT_DOUBLE_EQ(c.served_by(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.served_by(1.0), 4.0);
  EXPECT_DOUBLE_EQ(c.served_by(1.5), 4.0);
  EXPECT_DOUBLE_EQ(c.served_by(3.0), 10.0);
}

// ----------------------------------------------------------- WfiEstimator

TEST(WfiEstimator, ZeroWhenServiceMatchesShare) {
  // Flow owns half the server and receives exactly every other packet.
  WfiEstimator w(0.5);
  w.backlog_start();
  for (int i = 0; i < 100; ++i) {
    w.on_server_departure(100.0, (i % 2 == 0) ? 100.0 : 0.0);
  }
  // X oscillates between +50 and 0 → B-WFI = 50 (half a packet).
  EXPECT_NEAR(w.bwfi_bits(), 50.0, 1e-9);
}

TEST(WfiEstimator, DetectsServiceDenial) {
  // Flow entitled to half the server is starved for 10 packets.
  WfiEstimator w(0.5);
  w.backlog_start();
  for (int i = 0; i < 10; ++i) w.on_server_departure(100.0, 0.0);
  EXPECT_NEAR(w.bwfi_bits(), 500.0, 1e-9);
  EXPECT_NEAR(w.twfi_seconds(50.0), 10.0, 1e-9);
}

TEST(WfiEstimator, IgnoresServiceOutsideBacklog) {
  WfiEstimator w(0.5);
  for (int i = 0; i < 10; ++i) w.on_server_departure(100.0, 0.0);
  EXPECT_DOUBLE_EQ(w.bwfi_bits(), 0.0);
  w.backlog_start();
  w.on_server_departure(100.0, 0.0);
  w.backlog_end();
  for (int i = 0; i < 10; ++i) w.on_server_departure(100.0, 0.0);
  EXPECT_NEAR(w.bwfi_bits(), 50.0, 1e-9);
}

TEST(WfiEstimator, MinResetsAcrossBacklogPeriods) {
  WfiEstimator w(0.5);
  // First period: flow over-served (X dives negative).
  w.backlog_start();
  for (int i = 0; i < 4; ++i) w.on_server_departure(100.0, 100.0);
  w.backlog_end();
  // Second period: starved for 3 packets. Without the min reset the
  // earlier over-service would mask the new denial.
  w.backlog_start();
  for (int i = 0; i < 3; ++i) w.on_server_departure(100.0, 0.0);
  EXPECT_NEAR(w.bwfi_bits(), 150.0, 1e-9);
}

// -------------------------------------------------------------- Histogram

TEST(Histogram, BinsAndOverflow) {
  Histogram h(1.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(3.9);
  h.add(10.0);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(2), 0u);
  EXPECT_EQ(h.bin(3), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, CdfInterpolates) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 10; ++i) h.add(0.5);  // all in bin 0
  EXPECT_NEAR(h.cdf(1.0), 1.0, 1e-12);
  EXPECT_NEAR(h.cdf(0.5), 0.5, 1e-12);
  EXPECT_NEAR(h.cdf(10.0), 1.0, 1e-12);
  EXPECT_NEAR(h.cdf(0.0), 0.0, 1e-12);
}

// --------------------------------------------------------------- fairness

TEST(Fairness, JainIndexBounds) {
  const double equal[4] = {1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(jain_index(std::span<const double>(equal, 4)), 1.0, 1e-12);
  const double skewed[4] = {1.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(jain_index(std::span<const double>(skewed, 4)), 0.25, 1e-12);
  const double zeros[3] = {0.0, 0.0, 0.0};
  EXPECT_NEAR(jain_index(std::span<const double>(zeros, 3)), 1.0, 1e-12);
}

TEST(Fairness, MinOverMax) {
  const double x[3] = {2.0, 4.0, 8.0};
  EXPECT_NEAR(min_over_max(std::span<const double>(x, 3)), 0.25, 1e-12);
}

// --------------------------------------------------------------- quantile

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile q(0.5);
  q.add(3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_NEAR(q.value(), 2.0, 1e-12);
}

TEST(P2Quantile, MedianOfUniformStream) {
  util::Rng rng(4);
  P2Quantile q(0.5);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform(0.0, 10.0));
  EXPECT_NEAR(q.value(), 5.0, 0.15);
}

TEST(P2Quantile, TailQuantileOfExponentialStream) {
  util::Rng rng(9);
  P2Quantile q(0.99);
  for (int i = 0; i < 200000; ++i) q.add(rng.exponential(1.0));
  // True p99 of Exp(1) is -ln(0.01) ≈ 4.605.
  EXPECT_NEAR(q.value(), 4.605, 0.35);
}

TEST(P2Quantile, MonotoneUnderShift) {
  util::Rng rng(11);
  P2Quantile lo(0.25), hi(0.75);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    lo.add(x);
    hi.add(x);
  }
  EXPECT_LT(lo.value(), hi.value());
}

TEST(RunningMoments, MatchesClosedForm) {
  RunningMoments m;
  for (int i = 1; i <= 7; ++i) m.add(static_cast<double>(i));
  EXPECT_EQ(m.count(), 7u);
  EXPECT_NEAR(m.mean(), 4.0, 1e-12);
  EXPECT_NEAR(m.variance(), 28.0 / 6.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 7.0);
}

TEST(RunningMoments, SingleSample) {
  RunningMoments m;
  m.add(42.0);
  EXPECT_NEAR(m.mean(), 42.0, 1e-12);
  EXPECT_NEAR(m.variance(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.min(), 42.0);
  EXPECT_DOUBLE_EQ(m.max(), 42.0);
}

// ---- merge semantics: per-worker accumulation + merge-on-join must match
// ---- single-instance ingestion within each class's documented bound.

TEST(HistogramMerge, ExactlyMatchesSingleInstance) {
  util::Rng rng(7);
  Histogram single(0.5, 20);
  Histogram shards[4] = {{0.5, 20}, {0.5, 20}, {0.5, 20}, {0.5, 20}};
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(0.0, 12.0);  // some land in overflow
    single.add(x);
    shards[i % 4].add(x);
  }
  Histogram merged(0.5, 20);
  for (const Histogram& s : shards) merged.merge(s);
  for (std::size_t b = 0; b < single.bin_count(); ++b) {
    EXPECT_EQ(merged.bin(b), single.bin(b)) << "bin " << b;
  }
  EXPECT_EQ(merged.overflow(), single.overflow());
  EXPECT_EQ(merged.total(), single.total());
}

TEST(RunningMomentsMerge, MatchesSingleInstanceWithinRounding) {
  util::Rng rng(11);
  RunningMoments single;
  RunningMoments shards[4];
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.exponential(3.0) + 100.0;  // nonzero mean offset
    single.add(x);
    shards[i % 4].add(x);
  }
  RunningMoments merged;
  for (const RunningMoments& s : shards) merged.merge(s);
  // count/min/max are exact; mean and variance agree to FP rounding (the
  // documented bound for Chan's pairwise update).
  EXPECT_EQ(merged.count(), single.count());
  EXPECT_DOUBLE_EQ(merged.min(), single.min());
  EXPECT_DOUBLE_EQ(merged.max(), single.max());
  EXPECT_NEAR(merged.mean(), single.mean(), 1e-9 * single.mean());
  EXPECT_NEAR(merged.variance(), single.variance(),
              1e-9 * single.variance());
}

TEST(RunningMomentsMerge, EmptySidesAreIdentity) {
  RunningMoments a, b, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean(), 2.0, 1e-12);
  b.merge(a);  // empty.merge(nonempty) copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  EXPECT_DOUBLE_EQ(b.max(), 3.0);
}

TEST(P2QuantileMerge, ExactWhileBothSidesHoldRawSamples) {
  // Below 5 samples each side stores raw values, so the merge replays them
  // and must equal single-instance ingestion exactly.
  P2Quantile single(0.5);
  P2Quantile a(0.5), b(0.5);
  const double xs[] = {5.0, 1.0, 4.0, 2.0};
  for (int i = 0; i < 4; ++i) {
    single.add(xs[i]);
    (i < 2 ? a : b).add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), single.count());
  EXPECT_DOUBLE_EQ(a.value(), single.value());
}

TEST(P2QuantileMerge, CountExactAndValueWithinDocumentedBound) {
  // Sharded uniform stream: the merged P² estimate must land within a few
  // percent of the true quantile (the documented error contract — one
  // extra piecewise-linear interpolation step over the worse input).
  util::Rng rng(13);
  P2Quantile single(0.9);
  P2Quantile shards[4] = {P2Quantile(0.9), P2Quantile(0.9), P2Quantile(0.9),
                          P2Quantile(0.9)};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    single.add(x);
    shards[i % 4].add(x);
  }
  P2Quantile merged = shards[0];
  for (int s = 1; s < 4; ++s) merged.merge(shards[s]);
  EXPECT_EQ(merged.count(), static_cast<std::uint64_t>(n));
  EXPECT_NEAR(merged.value(), 0.9, 0.03);
  EXPECT_NEAR(merged.value(), single.value(), 0.03);
}

TEST(P2QuantileMerge, DisjointShardRangesStayBracketed) {
  // Median of a stream where shard A saw [0,1) and shard B saw [2,3): the
  // true median sits at the boundary; the merged estimate must stay inside
  // the combined support (the mixture-CDF inversion cannot extrapolate).
  util::Rng rng(17);
  P2Quantile a(0.5), b(0.5);
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.uniform(0.0, 1.0));
    b.add(rng.uniform(2.0, 3.0));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), 10000u);
  EXPECT_GE(a.value(), 0.0);
  EXPECT_LE(a.value(), 3.0);
  // With equal weights the mixture CDF crosses 0.5 in the gap [1, 2].
  EXPECT_GE(a.value(), 0.9);
  EXPECT_LE(a.value(), 2.1);
}

}  // namespace
}  // namespace hfq::stats
