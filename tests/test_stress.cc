// Stress / fuzz suite: long randomized runs over random hierarchies and
// every node policy, checking the invariants no run may violate —
// conservation, per-flow FIFO, work conservation, bounded divergence from
// the fluid reference, and clean drain.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hierarchy.h"
#include "core/hpfq.h"
#include "fluid/hgps.h"
#include "harness.h"
#include "util/rng.h"

namespace hfq {
namespace {

using net::FlowId;
using net::Packet;
using testing::packet;

struct RandomTree {
  core::Hierarchy spec;
  std::vector<FlowId> flows;
  std::vector<std::uint32_t> leaf_of;  // hierarchy index per flow
  int depth = 0;
};

RandomTree make_random_tree(util::Rng& rng) {
  RandomTree rt{core::Hierarchy(8000.0), {}, {}, 0};
  struct Open {
    std::uint32_t node;
    double rate;
    int depth;
  };
  std::vector<Open> open = {{0, 8000.0, 0}};
  FlowId next_flow = 0;
  while (!open.empty()) {
    const Open cur = open.back();
    open.pop_back();
    // Split this node's rate among 2-4 children.
    const int kids = static_cast<int>(rng.uniform_int(2, 4));
    std::vector<double> w(static_cast<std::size_t>(kids));
    double sum = 0.0;
    for (auto& x : w) {
      x = rng.uniform(0.5, 2.0);
      sum += x;
    }
    for (int k = 0; k < kids; ++k) {
      const double rate = cur.rate * w[static_cast<std::size_t>(k)] / sum;
      const bool leaf = cur.depth >= 3 || rng.uniform() < 0.55;
      if (leaf) {
        const auto idx = rt.spec.add_session(
            cur.node, "s" + std::to_string(next_flow), rate, next_flow);
        rt.flows.push_back(next_flow);
        rt.leaf_of.push_back(idx);
        ++next_flow;
      } else {
        const auto idx = rt.spec.add_class(
            cur.node, "c" + std::to_string(rt.spec.size()), rate);
        open.push_back({idx, rate, cur.depth + 1});
        rt.depth = std::max(rt.depth, cur.depth + 1);
      }
    }
  }
  return rt;
}

template <typename Policy>
void stress_policy(std::uint64_t seed) {
  util::Rng rng(seed);
  for (int trial = 0; trial < 4; ++trial) {
    RandomTree rt = make_random_tree(rng);
    auto h = rt.spec.build_packet<Policy>();
    sim::Simulator sim;
    sim::Link link(sim, *h, 8000.0);
    std::map<FlowId, std::uint64_t> last_id;
    std::map<FlowId, int> delivered;
    std::size_t total_delivered = 0;
    link.set_delivery([&](const Packet& p, net::Time) {
      if (last_id.count(p.flow) != 0) {
        ASSERT_LT(last_id[p.flow], p.id) << "FIFO violated, flow " << p.flow;
      }
      last_id[p.flow] = p.id;
      delivered[p.flow]++;
      ++total_delivered;
    });
    // Randomized traffic with idle gaps and bursts across all flows.
    std::size_t submitted = 0;
    double t = 0.0;
    std::uint64_t id = 0;
    for (int i = 0; i < 2500; ++i) {
      t += rng.uniform() < 0.02 ? rng.uniform(0.0, 3.0)   // idle gap
                                : rng.uniform(0.0, 0.08);  // dense
      const auto f = rt.flows[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(rt.flows.size()) - 1))];
      const int burst = rng.uniform() < 0.1
                            ? static_cast<int>(rng.uniform_int(2, 12))
                            : 1;
      for (int k = 0; k < burst; ++k) {
        const auto bytes =
            static_cast<std::uint32_t>(rng.uniform_int(10, 125));
        sim.at(t, [&link, p = packet(f, bytes, id++)] {
          Packet q = p;
          link.submit(q);
        });
        ++submitted;
      }
    }
    sim.run();
    EXPECT_EQ(total_delivered, submitted);
    EXPECT_EQ(h->backlog_packets(), 0u);  // fully drained
  }
}

TEST(Stress, HWf2qPlusRandomHierarchies) {
  stress_policy<core::Wf2qPlusPolicy>(1001);
}
TEST(Stress, HWfqRandomHierarchies) { stress_policy<core::GpsSffPolicy>(1002); }
TEST(Stress, HWf2qRandomHierarchies) {
  stress_policy<core::GpsSeffPolicy>(1003);
}
TEST(Stress, HScfqRandomHierarchies) { stress_policy<core::ScfqPolicy>(1004); }
TEST(Stress, HSfqRandomHierarchies) { stress_policy<core::SfqPolicy>(1005); }
TEST(Stress, HDrrRandomHierarchies) { stress_policy<core::DrrPolicy>(1006); }

// Divergence guard: on a saturated random hierarchy, every flow's packet
// service stays within a few max packets of the fluid H-GPS service when
// sampled at that flow's own departures.
TEST(Stress, HWf2qPlusTracksFluidOnRandomTrees) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 4; ++trial) {
    RandomTree rt = make_random_tree(rng);
    auto h = rt.spec.build_packet<core::Wf2qPlusPolicy>();
    auto fluid = rt.spec.build_fluid();
    sim::Simulator sim;
    sim::Link link(sim, *h, 8000.0);
    const double lmax = 1000.0;
    const double bound = (rt.depth + 3) * lmax;
    // Saturate every flow from t=0 so fluid backlog assumptions hold.
    std::map<FlowId, double> served;
    link.set_delivery([&](const Packet& p, net::Time t) {
      served[p.flow] += p.size_bits();
      fluid.advance_to(t);
      const auto leaf = rt.leaf_of[p.flow];
      EXPECT_NEAR(served[p.flow], fluid.work(leaf), bound)
          << "trial " << trial << " flow " << p.flow << " t=" << t;
    });
    std::uint64_t id = 0;
    sim.at(0.0, [&] {
      for (int k = 0; k < 120; ++k) {
        for (const auto f : rt.flows) {
          Packet p = packet(f, 125, id++);
          link.submit(p);
          fluid.arrive(0.0, rt.leaf_of[f], p.size_bits());
        }
      }
    });
    sim.run_until(100.0);  // all flows still backlogged
  }
}

// Endurance: a million-packet single run through a 2-level H-WF²Q+ —
// exercises the rebasing path with a tiny threshold and checks the clock
// survives with its ordering intact.
TEST(Stress, MillionPacketEnduranceWithRebasing) {
  core::HWf2qPlus h(8e6);
  const auto a = h.add_internal(h.root(), 4e6);
  h.add_leaf(a, 2e6, 0);
  h.add_leaf(a, 2e6, 1);
  h.add_leaf(h.root(), 4e6, 2);
  h.mutable_policy(h.root()).set_rebase_threshold(1.0);
  h.mutable_policy(a).set_rebase_threshold(1.0);

  const double pkt_time = 1000.0 / 8e6;
  double now = 0.0;
  std::uint64_t id = 0;
  std::map<FlowId, std::uint64_t> last_id;
  std::size_t delivered = 0;
  // Keep ~6 packets in the system, alternating flows.
  for (FlowId f = 0; f < 3; ++f) {
    ASSERT_TRUE(h.enqueue(packet(f, 125, id++), now));
    ASSERT_TRUE(h.enqueue(packet(f, 125, id++), now));
  }
  for (int i = 0; i < 1000000; ++i) {
    const auto p = h.dequeue(now);
    ASSERT_TRUE(p.has_value());
    now += pkt_time;
    if (last_id.count(p->flow) != 0) {
      ASSERT_LT(last_id[p->flow], p->id);
    }
    last_id[p->flow] = p->id;
    ++delivered;
    ASSERT_TRUE(h.enqueue(packet(p->flow, 125, id++), now));
  }
  EXPECT_EQ(delivered, 1000000u);
  EXPECT_GT(h.policy_of(h.root()).rebase_count(), 100u);
}

}  // namespace
}  // namespace hfq
