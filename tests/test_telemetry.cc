// Tests for the always-on telemetry plane (src/telemetry/): log-bucketed
// histogram geometry and exact snapshot merging, Prometheus text round-trip
// and strict parse-error detection, the stats stream's monotonic-counter /
// sequence-number contract across live edits, the bound monitor's analytic
// bounds, false-positive-freedom on conforming traffic, and the acceptance
// path — a deliberately mis-weighted live edit applied behind the
// monitor's back (Service::apply_edit_text_unmonitored) must be flagged
// within an epoch, produce a breach report on disk, and arm the flight
// recorder capture.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/tree_parser.h"
#include "net/packet.h"
#include "obs/flight_recorder.h"
#include "qos/admission.h"
#include "runner/scenario.h"
#include "serve/harness.h"
#include "serve/service.h"
#include "telemetry/bound_monitor.h"
#include "telemetry/log_histogram.h"
#include "telemetry/plane.h"
#include "telemetry/prometheus.h"
#include "telemetry/shard_telemetry.h"

namespace hfq {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// LogHistogram: bucket geometry and exact snapshot merge.

TEST(LogHistogram, BucketIndexIsMonotoneAndEdgesBracket) {
  using H = telemetry::LogHistogram;
  std::size_t prev = 0;
  for (std::uint64_t n = 0; n < 100000; n = n < 64 ? n + 1 : n * 9 / 8) {
    const std::size_t idx = H::index_of(n);
    EXPECT_GE(idx, prev) << "index not monotone at n=" << n;
    EXPECT_LE(telemetry::HistogramSnapshot::bucket_lo(H::kSubBits, idx), n);
    EXPECT_GT(telemetry::HistogramSnapshot::bucket_hi(H::kSubBits, idx), n);
    prev = idx;
  }
  // The linear region is exact: one value per bucket below 2^kSubBits.
  for (std::uint64_t n = 0; n < H::kSub; ++n) {
    EXPECT_EQ(H::index_of(n), n);
  }
}

TEST(LogHistogram, RelativeBucketWidthStaysBounded) {
  using H = telemetry::LogHistogram;
  for (std::uint64_t n = H::kSub; n < (1ull << 40); n = n * 5 / 4) {
    const std::size_t idx = H::index_of(n);
    const double lo = static_cast<double>(
        telemetry::HistogramSnapshot::bucket_lo(H::kSubBits, idx));
    const double hi = static_cast<double>(
        telemetry::HistogramSnapshot::bucket_hi(H::kSubBits, idx));
    // 32 sub-buckets per octave: width/lo <= 1/32 + rounding.
    EXPECT_LE((hi - lo) / lo, 1.0 / 32.0 + 1e-9) << "at n=" << n;
  }
}

telemetry::HistogramSnapshot fill(double unit, std::uint64_t seed,
                                  int count) {
  telemetry::LogHistogram h(unit);
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> exp(1e3);
  for (int i = 0; i < count; ++i) h.observe(exp(rng));
  return h.snapshot();
}

bool same_buckets(const telemetry::HistogramSnapshot& a,
                  const telemetry::HistogramSnapshot& b) {
  return a.count == b.count && a.buckets == b.buckets;
}

TEST(LogHistogram, MergeIsAssociativeAndCommutative) {
  const auto a = fill(1e-7, 1, 4000);
  const auto b = fill(1e-7, 2, 2500);
  const auto c = fill(1e-7, 3, 600);

  auto ab_c = a;          // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  auto bc = b;            // a + (b + c)
  bc.merge(c);
  auto a_bc = a;
  a_bc.merge(bc);
  EXPECT_TRUE(same_buckets(ab_c, a_bc));

  auto ba = b;            // b + a == a + b
  ba.merge(a);
  auto ab = a;
  ab.merge(b);
  EXPECT_TRUE(same_buckets(ab, ba));
  EXPECT_EQ(ab.count, a.count + b.count);
  EXPECT_EQ(ab_c.count, a.count + b.count + c.count);
}

TEST(LogHistogram, QuantilesLandInTheRightDecade) {
  telemetry::LogHistogram h(1e-7);
  for (int i = 0; i < 900; ++i) h.observe(1e-3);   // 90% at 1 ms
  for (int i = 0; i < 100; ++i) h.observe(1e-1);   // 10% at 100 ms
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.quantile(0.5), 1e-3, 1e-3 * 0.05);
  EXPECT_NEAR(s.quantile(0.99), 1e-1, 1e-1 * 0.05);
  EXPECT_GE(s.max_value(), 1e-1);
  EXPECT_LT(s.max_value(), 1.1e-1);
}

// ---------------------------------------------------------------------------
// Prometheus text format: write → parse round trip, strict error reporting.

TEST(Prometheus, RoundTripPreservesFamiliesSamplesAndLabels) {
  telemetry::TextWriter w;
  w.family("hfq_demo_total", "counter", "A demo counter; quotes \"inside\".");
  w.sample("hfq_demo_total", {{"shard", "0"}}, 41.0);
  w.sample("hfq_demo_total", {{"shard", "1"}}, 1.0);
  w.family("hfq_demo_gauge", "gauge", "A gauge with a tricky label.");
  w.sample("hfq_demo_gauge",
           {{"name", "weird\\label\"value\"\nnewline"}}, -2.5);
  w.family("hfq_demo_summary", "summary", "Quantiles.");
  w.sample("hfq_demo_summary", {{"quantile", "0.5"}}, 0.25);
  w.sample("hfq_demo_summary_sum", {}, 12.5);
  w.sample("hfq_demo_summary_count", {}, 50.0);

  const auto r = telemetry::parse_prometheus(w.str());
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  ASSERT_EQ(r.families.size(), 3u);
  EXPECT_EQ(r.families[0].name, "hfq_demo_total");
  EXPECT_EQ(r.families[0].type, "counter");
  EXPECT_EQ(r.families[0].help, "A demo counter; quotes \"inside\".");

  EXPECT_DOUBLE_EQ(r.sum("hfq_demo_total"), 42.0);
  const auto* s0 = r.find("hfq_demo_total", {{"shard", "0"}});
  ASSERT_NE(s0, nullptr);
  EXPECT_DOUBLE_EQ(s0->value, 41.0);

  // The escaped label value survives the round trip byte-for-byte.
  const auto* g =
      r.find("hfq_demo_gauge", {{"name", "weird\\label\"value\"\nnewline"}});
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, -2.5);

  const auto* q = r.find("hfq_demo_summary", {{"quantile", "0.5"}});
  ASSERT_NE(q, nullptr);
  EXPECT_DOUBLE_EQ(q->value, 0.25);
  const auto* cnt = r.find("hfq_demo_summary_count");
  ASSERT_NE(cnt, nullptr);
  EXPECT_DOUBLE_EQ(cnt->value, 50.0);
}

TEST(Prometheus, MalformedLinesAreReportedWithLineNumbers) {
  // Sample before its # TYPE, a garbage line, and a bad value.
  const std::string text =
      "early_sample 1\n"
      "# TYPE ok_metric counter\n"
      "ok_metric 3\n"
      "!!! not a metric line\n"
      "ok_metric not_a_number\n";
  const auto r = telemetry::parse_prometheus(text);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.errors.size(), 3u);
  // The well-formed sample still parses.
  const auto* ok = r.find("ok_metric");
  ASSERT_NE(ok, nullptr);
  EXPECT_DOUBLE_EQ(ok->value, 3.0);
  // Errors carry their 1-based line numbers.
  EXPECT_NE(r.errors[0].find("line 1"), std::string::npos) << r.errors[0];
  EXPECT_NE(r.errors[1].find("line 4"), std::string::npos) << r.errors[1];
  EXPECT_NE(r.errors[2].find("line 5"), std::string::npos) << r.errors[2];
}

// ---------------------------------------------------------------------------
// ShardTelemetry: single-writer cells, bounds, breach ring.

TEST(ShardTelemetry, CountsFlowsAndDetectsDelayBreaches) {
  telemetry::ShardTelemetryConfig tc;
  tc.flow_slots = 8;
  tc.delay_checks = true;
  telemetry::ShardTelemetry tel(tc);

  tel.set_bound(3, 0.010);
  tel.on_arrival(3, 500);
  tel.on_delivery(3, 500, 0.005, 1.0, true);   // within bound
  EXPECT_EQ(tel.delay_breaches(), 0u);
  tel.on_delivery(3, 500, 0.020, 1.1, false);  // breach
  EXPECT_EQ(tel.delay_breaches(), 1u);
  EXPECT_EQ(tel.arrived_bits(3), 8ull * 500);
  EXPECT_EQ(tel.served_bits(3), 2 * 8ull * 500);

  const auto breaches = tel.breaches_since(0);
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].flow, 3u);
  EXPECT_DOUBLE_EQ(breaches[0].delay_s, 0.020);
  EXPECT_DOUBLE_EQ(breaches[0].bound_s, 0.010);
  // Already-reported breaches are not returned again.
  EXPECT_TRUE(tel.breaches_since(breaches[0].seq).empty());

  // Flows beyond the slot range are counted, never tracked.
  tel.on_arrival(100, 500);
  EXPECT_EQ(tel.unmonitored_pkts(), 1u);
  // No bound published (kNoBound = inf): no delay is ever a breach.
  tel.on_delivery(5, 500, 1e9, 2.0, false);
  EXPECT_EQ(tel.delay_breaches(), 1u);
}

TEST(ShardTelemetry, BreachRingKeepsNewestWhenLapped) {
  telemetry::ShardTelemetryConfig tc;
  tc.flow_slots = 4;
  telemetry::ShardTelemetry tel(tc);
  tel.set_bound(0, 0.0);
  const std::size_t n = telemetry::ShardTelemetry::kBreachRing + 10;
  for (std::size_t i = 0; i < n; ++i) {
    tel.on_delivery(0, 100, 1.0 + static_cast<double>(i), 1.0, false);
  }
  EXPECT_EQ(tel.delay_breaches(), n);
  const auto copies = tel.breaches_since(0);
  ASSERT_EQ(copies.size(), telemetry::ShardTelemetry::kBreachRing);
  // Oldest-first, ending at the newest ordinal.
  EXPECT_EQ(copies.front().seq, n - telemetry::ShardTelemetry::kBreachRing + 1);
  EXPECT_EQ(copies.back().seq, n);
}

// ---------------------------------------------------------------------------
// BoundMonitor: analytic bounds on the scaled tree.

TEST(BoundMonitor, PublishesCorollary2BoundsOnTheScaledTree) {
  const core::Hierarchy tree = core::parse_hierarchy(
      "link 8M\n"
      "cA 6M {\n  s0 4M flow=0\n  s1 2M flow=1\n}\n"
      "s2 2M flow=2\n");
  telemetry::BoundMonitorConfig mc;
  mc.lmax_bits = 8000.0;
  mc.sigma_packets = 4.0;
  mc.slack_s = 0.01;
  const std::size_t shards = 2;
  telemetry::BoundMonitor mon(tree, shards, mc);

  EXPECT_EQ(mon.monitored_flows(), 3u);
  EXPECT_GE(mon.monitored_classes(), 1u);

  // The monitor's per-flow bound is the Corollary 2 walk over the 1/N
  // scaled tree with sigma = sigma_packets * Lmax, plus slack. qos::
  // delay_bound on a hand-scaled tree is the independent reference.
  core::Hierarchy scaled(tree.link_rate() / shards, tree.node(0).name);
  const auto ca = scaled.add_class(0, "cA", 6e6 / shards);
  scaled.add_session(ca, "s0", 4e6 / shards, 0);
  scaled.add_session(ca, "s1", 2e6 / shards, 1);
  scaled.add_session(0, "s2", 2e6 / shards, 2);
  for (net::FlowId f = 0; f < 3; ++f) {
    const auto want = qos::delay_bound_for_flow(
        scaled, f, mc.sigma_packets * mc.lmax_bits, mc.lmax_bits);
    ASSERT_TRUE(want.has_value());
    EXPECT_NEAR(mon.delay_bound_s(f), *want + mc.slack_s, 1e-12)
        << "flow " << f;
    // The lag budget is the sigma-free latency tail + slack — strictly
    // below the delay bound for any positive sigma.
    EXPECT_LT(mon.lag_budget_s(f), mon.delay_bound_s(f));
    EXPECT_GT(mon.lag_budget_s(f), mc.slack_s);
  }
  EXPECT_EQ(mon.delay_bound_s(99),
            std::numeric_limits<double>::infinity());

  // Deeper sessions carry more Lmax/r_n terms: s0 sits under cA, s2 under
  // the link directly, both tails include their own rate term.
  EXPECT_GT(mon.lag_budget_s(1), mon.lag_budget_s(2) - 1e-12);
}

TEST(BoundMonitor, ReweightEditMovesTheBound) {
  const core::Hierarchy tree = core::parse_hierarchy(
      "link 8M\ns0 4M flow=0\ns1 4M flow=1\n");
  telemetry::BoundMonitorConfig mc;
  mc.slack_s = 0.0;
  telemetry::BoundMonitor mon(tree, 1, mc);
  const double before = mon.delay_bound_s(0);

  serve::ResolvedEdit e;
  e.kind = serve::ResolvedEdit::Kind::kSetRate;
  e.flow = 0;
  e.rate_bps = 1e6;  // slashed from 4M: sigma/r term quadruples
  mon.on_edits({e});
  const double after = mon.delay_bound_s(0);
  EXPECT_GT(after, before * 2.0);

  serve::ResolvedEdit rm;
  rm.kind = serve::ResolvedEdit::Kind::kRemove;
  rm.flow = 0;
  mon.on_edits({rm});
  EXPECT_EQ(mon.delay_bound_s(0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(mon.monitored_flows(), 1u);
}

// ---------------------------------------------------------------------------
// Stats stream contract: per-tick sequence numbers, monotonic counters —
// across live edits (the regression this PR fixes).

TEST(StatsStream, SeqAndCountersMonotoneAcrossLiveEdits) {
  std::ostringstream tree_text;
  tree_text << "link 50M\n";
  for (int f = 0; f < 32; ++f) {
    tree_text << "s" << f << " " << (50e6 / 32) << " flow=" << f << "\n";
  }
  runner::Scenario sc;
  sc.tree_text = tree_text.str();
  sc.scheduler = "wf2q+";
  sc.traffic = "cbr";
  sc.load = 0.8;
  sc.duration_s = 0.8;
  sc.packet_bytes = 400;
  sc.seed = 7;

  runner::ServeSpec spec;
  spec.shards = 2;
  spec.producers = 1;
  spec.paced = true;
  spec.telemetry = "counters";
  spec.edits.push_back({0.2, "s0 9M\ns1 200k\n"});
  spec.edits.push_back({0.4, "remove s2\n"});

  std::ostringstream stats;
  const serve::ServeRunResult r =
      serve::run_serve_scenario(sc, spec, &stats);
  EXPECT_TRUE(r.conservation_ok) << r.summary();
  EXPECT_EQ(r.edit_batches, 2u);

  // Pull one field out of a stats JSONL line.
  auto field = [](const std::string& line, const std::string& key) -> double {
    const std::string tag = "\"" + key + "\":";
    const auto at = line.find(tag);
    if (at == std::string::npos) return -1.0;
    return std::stod(line.substr(at + tag.size()));
  };

  std::istringstream in(stats.str());
  std::string line;
  std::uint64_t last_seq = 0;
  std::vector<double> last_delivered(spec.shards, 0.0);
  std::vector<double> last_ingested(spec.shards, 0.0);
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const double seq = field(line, "seq");
    ASSERT_GE(seq, 1.0) << "stats line missing seq: " << line;
    // Seq increments by one per tick; all shards of a tick share it.
    const auto s = static_cast<std::uint64_t>(seq);
    ASSERT_TRUE(s == last_seq || s == last_seq + 1)
        << "seq jumped " << last_seq << " -> " << s;
    last_seq = s;
    const auto shard = static_cast<std::size_t>(field(line, "shard"));
    ASSERT_LT(shard, spec.shards);
    // Counters never go backwards — not across ticks and not across the
    // two live edits (the pre-fix regression).
    const double delivered = field(line, "delivered");
    const double ingested = field(line, "ingested");
    const double sched_drops = field(line, "sched_drops");
    EXPECT_GE(delivered, last_delivered[shard]) << line;
    EXPECT_GE(ingested, last_ingested[shard]) << line;
    EXPECT_GE(sched_drops, 0.0) << "derived sched_drops underflow: " << line;
    last_delivered[shard] = delivered;
    last_ingested[shard] = ingested;
  }
  EXPECT_GE(lines, 2u * spec.shards) << "stream too short:\n" << stats.str();
}

// ---------------------------------------------------------------------------
// Conforming traffic is false-positive-free; a mis-weighted unmonitored
// edit is flagged within an epoch.

serve::ServeRunResult conforming_run(const std::string& traffic,
                                     std::uint64_t seed) {
  std::ostringstream tree_text;
  tree_text << "link 50M\n";
  for (int f = 0; f < 16; ++f) {
    tree_text << "s" << f << " " << (50e6 / 16) << " flow=" << f << "\n";
  }
  runner::Scenario sc;
  sc.tree_text = tree_text.str();
  sc.scheduler = "wf2q+";
  sc.traffic = traffic;
  sc.load = 0.7;
  sc.duration_s = 1.0;
  sc.packet_bytes = 500;
  sc.seed = seed;

  runner::ServeSpec spec;
  spec.shards = 2;
  spec.producers = 1;
  spec.paced = true;
  spec.telemetry = "monitor";
  spec.telemetry_period_s = 0.1;
  return serve::run_serve_scenario(sc, spec, nullptr);
}

TEST(BoundMonitorEndToEnd, ConformingCbrRunsBreachFree) {
  const serve::ServeRunResult r = conforming_run("cbr", 21);
  EXPECT_TRUE(r.conservation_ok) << r.summary();
  EXPECT_EQ(r.breaches, 0u) << r.summary();
  EXPECT_EQ(r.delay_breaches, 0u);
  EXPECT_EQ(r.lag_breaches, 0u);
  EXPECT_EQ(r.monitored_flows, 16u);
  EXPECT_GE(r.snapshot_seq, 2u);  // the plane ticked during the run
}

TEST(BoundMonitorEndToEnd, ConformingPoissonRunsBreachFree) {
  const serve::ServeRunResult r = conforming_run("poisson", 22);
  EXPECT_TRUE(r.conservation_ok) << r.summary();
  EXPECT_EQ(r.breaches, 0u) << r.summary();
}

// The acceptance test: a mis-weighting edit applied to the shards but NOT
// to the monitor (fault injection) starves a flow the monitor still
// believes owns half the link. The monitor must flag it within an epoch,
// write a breach report, and arm the shard's flight-recorder capture.
TEST(BoundMonitorEndToEnd, UnmonitoredMisweightTripsTheMonitorWithinAnEpoch) {
  const fs::path dir =
      fs::temp_directory_path() / "hfq_telemetry_breach_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const core::Hierarchy tree = core::parse_hierarchy(
      "link 1M\ns0 500k flow=0\ns1 500k flow=1\n");
  serve::ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.paced = true;
  cfg.telemetry.level = serve::TelemetrySpec::Level::kMonitor;
  cfg.telemetry.period_s = 0.1;    // epoch: detection latency bound
  cfg.telemetry.slack_s = 0.02;
  cfg.telemetry.lmax_bits = 8.0 * 500;
  cfg.telemetry.sigma_packets = 4.0;
  cfg.telemetry.breach_dir = dir.string();
  serve::Service svc(tree, cfg);
  svc.start();

  // Paced producers driven by cumulative-bits targets (self-correcting
  // against sleep jitter). Pre-edit both flows conform: 300k offered
  // against a believed 500k share each. At t≈0.4 s the unmonitored edit
  // slashes s0 to 20k and hands s1 980k, and flow 1 ramps to 950k — so s1
  // (legitimately, under the shards' new weights) consumes the link and
  // starves s0, whose believed service curve still promises 500k. Flow 1
  // never violates a bound the monitor believes: its measured service
  // exceeds its believed rate, which is never a breach.
  const double kBits = 8.0 * 500;
  double edit_at = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  bool edited = false;
  std::uint64_t id = 0;
  double sent0 = 0.0, sent1 = 0.0;  // cumulative bits submitted
  auto submit = [&](net::FlowId f) {
    net::Packet p;
    p.id = id++;
    p.flow = f;
    p.size_bytes = 500;
    p.created = svc.clock_s();
    (void)svc.submit(p);
  };
  while (true) {
    const double t = elapsed();
    if (t > 1.6) break;
    if (!edited && t > 0.4) {
      svc.apply_edit_text_unmonitored("s0 20k\ns1 980k\n");
      edit_at = svc.clock_s();
      edited = true;
    }
    const double target0 = 300e3 * t;
    const double target1 =
        !edited ? 300e3 * t
                : 300e3 * 0.4 + 950e3 * (t - 0.4);
    while (sent0 < target0) { submit(0); sent0 += kBits; }
    while (sent1 < target1) { submit(1); sent1 += kBits; }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Give the plane a couple more epochs to evaluate, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  telemetry::TelemetryPlane* plane = svc.plane();
  ASSERT_NE(plane, nullptr);
  svc.stop();

  EXPECT_GT(plane->breaches_total(), 0u) << "mis-weight was not flagged";
  const std::vector<telemetry::Breach> log = plane->breach_log();
  ASSERT_FALSE(log.empty());
  // Every breach is on the starved flow, after the edit, and the first
  // detection landed within a few epochs of the violation building up (the
  // lag needs tail+slack seconds of starvation to become provable, then
  // one epoch to be seen; 1.0 s is generous for period_s = 0.1).
  for (const telemetry::Breach& b : log) {
    EXPECT_EQ(b.flow, 0u);
    EXPECT_GT(b.at_s, edit_at);
  }
  EXPECT_LT(log.front().at_s - edit_at, 1.0)
      << "detection took " << log.front().at_s - edit_at << "s";

  // The breach report landed on disk...
  bool found_report = false;
  bool found_capture = false;
  for (const auto& ent : fs::directory_iterator(dir)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind("breach_", 0) == 0) found_report = true;
    if (name.find("_ring.csv") != std::string::npos) found_capture = true;
  }
  EXPECT_TRUE(found_report) << "no breach_*.json in " << dir;
  // ...and the anomaly capture armed the flight recorder. The dump file
  // only exists when tracing is compiled in (same gate as the PR-4 spill
  // path); with HFQ_TRACE off the arming is a no-op by design.
  if (obs::compiled_in()) {
    EXPECT_TRUE(found_capture) << "no shard ring dump in " << dir;
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// TelemetryPlane exposition: the file a scrape reads is well-formed and
// internally consistent with the run that produced it.

TEST(TelemetryPlane, ExpositionFileParsesAndMatchesRunTotals) {
  const fs::path prom =
      fs::temp_directory_path() / "hfq_telemetry_prom_test.txt";
  fs::remove(prom);

  std::ostringstream tree_text;
  tree_text << "link 40M\n";
  for (int f = 0; f < 8; ++f) {
    tree_text << "s" << f << " " << (40e6 / 8) << " flow=" << f << "\n";
  }
  runner::Scenario sc;
  sc.tree_text = tree_text.str();
  sc.scheduler = "wf2q+";
  sc.traffic = "cbr";
  sc.load = 0.6;
  sc.duration_s = 0.6;
  sc.packet_bytes = 500;
  sc.seed = 5;

  runner::ServeSpec spec;
  spec.shards = 2;
  spec.producers = 1;
  spec.paced = true;
  spec.telemetry = "monitor";
  spec.telemetry_period_s = 0.1;

  const serve::ServeRunResult r =
      serve::run_serve_scenario(sc, spec, nullptr, "", prom.string());
  EXPECT_TRUE(r.conservation_ok) << r.summary();

  std::ifstream in(prom);
  ASSERT_TRUE(in.good()) << "no exposition written to " << prom;
  std::ostringstream text;
  text << in.rdbuf();
  const auto parsed = telemetry::parse_prometheus(text.str());
  ASSERT_TRUE(parsed.ok()) << (parsed.errors.empty() ? "" : parsed.errors[0]);

  // The final tick runs after service stop, so the exposed totals are the
  // run's exact final counters.
  EXPECT_DOUBLE_EQ(parsed.sum("hfq_shard_delivered_total"),
                   static_cast<double>(r.delivered));
  EXPECT_DOUBLE_EQ(parsed.sum("hfq_breaches_total"), 0.0);
  const auto* seq = parsed.find("hfq_snapshot_seq");
  ASSERT_NE(seq, nullptr);
  EXPECT_GE(seq->value, 2.0);
  const auto* flows = parsed.find("hfq_monitored_flows");
  ASSERT_NE(flows, nullptr);
  EXPECT_DOUBLE_EQ(flows->value, 8.0);
  // Latency summary is present with a full quantile ladder.
  EXPECT_NE(parsed.find("hfq_latency_seconds", {{"quantile", "0.99"}}),
            nullptr);
  EXPECT_NE(parsed.find("hfq_latency_seconds_count"), nullptr);
  fs::remove(prom);
}

}  // namespace
}  // namespace hfq
