// Tests for the multi-hop topology substrate (src/topo) and H-DRR.
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/hpfq.h"
#include "harness.h"
#include "sched/fifo.h"
#include "topo/network.h"

namespace hfq::topo {
namespace {

using hfq::testing::packet;
using net::FlowId;
using net::Packet;

std::unique_ptr<net::Scheduler> fifo() {
  return std::make_unique<sched::Fifo>();
}

TEST(Network, SingleHopDeliver) {
  sim::Simulator sim;
  Network net(sim);
  const auto p0 = net.add_port(8000.0, fifo());
  net.set_route(0, {p0});
  std::vector<double> deliveries;
  net.set_delivery([&](const Packet&, net::Time t) { deliveries.push_back(t); });
  sim.at(0.0, [&] { net.inject(packet(0, 125, 1)); });
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_NEAR(deliveries[0], 0.125, 1e-9);
}

TEST(Network, MultiHopAccumulatesTransmissionAndPropagation) {
  sim::Simulator sim;
  Network net(sim);
  const auto p0 = net.add_port(8000.0, fifo(), /*prop=*/0.5);
  const auto p1 = net.add_port(8000.0, fifo(), /*prop=*/0.25);
  const auto p2 = net.add_port(8000.0, fifo(), /*prop=*/1.0);
  net.set_route(7, {p0, p1, p2});
  double delivered_at = -1.0;
  net.set_delivery([&](const Packet&, net::Time t) { delivered_at = t; });
  sim.at(0.0, [&] { net.inject(packet(7, 125, 1)); });
  sim.run();
  // 3 transmissions of 0.125 s + props 0.5 + 0.25 + 1.0.
  EXPECT_NEAR(delivered_at, 3 * 0.125 + 1.75, 1e-9);
}

TEST(Network, FlowsFollowTheirOwnRoutes) {
  sim::Simulator sim;
  Network net(sim);
  const auto p0 = net.add_port(8000.0, fifo());
  const auto p1 = net.add_port(8000.0, fifo());
  const auto p2 = net.add_port(8000.0, fifo());
  net.set_route(0, {p0, p2});
  net.set_route(1, {p1, p2});
  std::map<FlowId, int> delivered;
  net.set_delivery([&](const Packet& p, net::Time) { delivered[p.flow]++; });
  sim.at(0.0, [&] {
    net.inject(packet(0, 125, 1));
    net.inject(packet(1, 125, 2));
  });
  sim.run();
  EXPECT_EQ(delivered[0], 1);
  EXPECT_EQ(delivered[1], 1);
  EXPECT_EQ(net.link(p0).packets_sent(), 1u);
  EXPECT_EQ(net.link(p1).packets_sent(), 1u);
  EXPECT_EQ(net.link(p2).packets_sent(), 2u);
}

TEST(Network, PerFlowOrderPreservedAcrossHops) {
  sim::Simulator sim;
  Network net(sim);
  const auto p0 = net.add_port(8000.0, fifo(), 0.01);
  const auto p1 = net.add_port(8000.0, fifo());
  net.set_route(3, {p0, p1});
  std::vector<std::uint64_t> ids;
  net.set_delivery([&](const Packet& p, net::Time) { ids.push_back(p.id); });
  sim.at(0.0, [&] {
    for (int i = 0; i < 10; ++i) net.inject(packet(3, 125, i));
  });
  sim.run();
  ASSERT_EQ(ids.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(ids[i], i);
}

TEST(Network, PortTapSeesLocalDepartures) {
  sim::Simulator sim;
  Network net(sim);
  const auto p0 = net.add_port(8000.0, fifo(), 1.0);
  const auto p1 = net.add_port(8000.0, fifo());
  net.set_route(0, {p0, p1});
  int tap_count = 0;
  double tap_time = -1.0;
  net.set_port_tap(p0, [&](const Packet&, net::Time t) {
    ++tap_count;
    tap_time = t;
  });
  net.set_delivery([](const Packet&, net::Time) {});
  sim.at(0.0, [&] { net.inject(packet(0, 125, 1)); });
  sim.run();
  EXPECT_EQ(tap_count, 1);
  EXPECT_NEAR(tap_time, 0.125, 1e-9);  // before propagation
}

TEST(Network, DropAtFirstHopReportsFalse) {
  sim::Simulator sim;
  Network net(sim);
  auto sched = std::make_unique<sched::Fifo>(/*capacity=*/1);
  const auto p0 = net.add_port(8000.0, std::move(sched));
  net.set_route(0, {p0});
  net.set_delivery([](const Packet&, net::Time) {});
  bool first = true, second = true, third = true;
  sim.at(0.0, [&] {
    first = net.inject(packet(0, 125, 1));   // goes into service
    second = net.inject(packet(0, 125, 2));  // queued
    third = net.inject(packet(0, 125, 3));   // dropped
  });
  sim.run();
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
  EXPECT_FALSE(third);
}

TEST(Network, CrossingFlowsShareTheMiddlePortFairly) {
  // Diamond: two flows enter at different edge ports and contend on a
  // shared middle port running WF²Q+ with a 3:1 weight split.
  sim::Simulator sim;
  Network net(sim);
  const auto in0 = net.add_port(1e6, fifo());
  const auto in1 = net.add_port(1e6, fifo());
  auto mid_sched = std::make_unique<core::HWf2qPlus>(1e6);
  mid_sched->add_leaf(mid_sched->root(), 0.75e6, 0);
  mid_sched->add_leaf(mid_sched->root(), 0.25e6, 1);
  const auto mid = net.add_port(1e6, std::move(mid_sched));
  net.set_route(0, {in0, mid});
  net.set_route(1, {in1, mid});
  std::map<FlowId, double> bits;
  // Count only while both flows are still backlogged at the middle port
  // (everything eventually drains 50/50 since the offered loads are equal).
  net.set_delivery([&](const Packet& p, net::Time t) {
    if (t <= 2.0) bits[p.flow] += p.size_bits();
  });
  sim.at(0.0, [&] {
    for (int i = 0; i < 2000; ++i) {
      net.inject(packet(0, 125, 2 * i));
      net.inject(packet(1, 125, 2 * i + 1));
    }
  });
  sim.run_until(10.0);
  // The edge ports forward at full rate; the middle enforces 3:1.
  EXPECT_NEAR(bits[0] / (bits[0] + bits[1]), 0.75, 0.03);
}

// ------------------------------------------------------------------ H-DRR

TEST(HDrr, LongRunSharesFollowRates) {
  core::HDrr h(8000.0);
  const auto a = h.add_internal(h.root(), 6000.0);
  h.add_leaf(a, 4000.0, 0);
  h.add_leaf(a, 2000.0, 1);
  h.add_leaf(h.root(), 2000.0, 2);
  std::vector<hfq::testing::TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 600; ++k) {
    for (FlowId f = 0; f < 3; ++f) arr.push_back({0.0, packet(f, 125, id++)});
  }
  const auto deps = hfq::testing::run_trace(h, 8000.0, arr);
  std::map<FlowId, double> bits;
  for (const auto& d : deps) {
    if (d.time <= 60.0) bits[d.pkt.flow] += d.pkt.size_bits();
  }
  // Rates 4000 / 2000 / 2000 out of 8000 over 60 s.
  EXPECT_NEAR(bits[0], 4000.0 * 60, 20000.0);
  EXPECT_NEAR(bits[1], 2000.0 * 60, 20000.0);
  EXPECT_NEAR(bits[2], 2000.0 * 60, 20000.0);
}

TEST(HDrr, WorkConservingAndLossless) {
  core::HDrr h(8000.0);
  const auto a = h.add_internal(h.root(), 4000.0);
  h.add_leaf(a, 4000.0, 0);
  h.add_leaf(h.root(), 4000.0, 1);
  std::vector<hfq::testing::TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 100; ++k) {
    arr.push_back({0.0, packet(0, 125, id++)});
    arr.push_back({0.0, packet(1, 125, id++)});
  }
  const auto deps = hfq::testing::run_trace(h, 8000.0, arr);
  ASSERT_EQ(deps.size(), 200u);
  for (std::size_t i = 0; i < deps.size(); ++i) {
    EXPECT_NEAR(deps[i].time, 0.125 * static_cast<double>(i + 1), 1e-9);
  }
}

}  // namespace
}  // namespace hfq::topo
