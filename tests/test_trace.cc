// Tests for the trace module: round-trip I/O, validation, replay fidelity,
// and record-then-replay equivalence against a live source mix.
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/wf2qplus.h"
#include "sched/fifo.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "traffic/cbr.h"
#include "traffic/poisson.h"
#include "util/rng.h"

namespace hfq::trace {
namespace {

TEST(Trace, WriteReadRoundTrip) {
  const std::vector<Record> records = {
      {0.0, 1, 100}, {0.5, 2, 200}, {0.5, 1, 50}, {1.25, 3, 1500}};
  std::stringstream ss;
  write(ss, records);
  const auto back = read(ss);
  EXPECT_EQ(back, records);
}

TEST(Trace, ReadSkipsCommentsAndHeader) {
  std::stringstream ss("time_s,flow,size_bytes\n# comment\n1.5,7,99\n");
  const auto r = read(ss);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0].time, 1.5);
  EXPECT_EQ(r[0].flow, 7u);
  EXPECT_EQ(r[0].size_bytes, 99u);
}

TEST(Trace, ReadRejectsMalformedLine) {
  std::stringstream ss("1.5,7\n");
  EXPECT_THROW(read(ss), std::runtime_error);
}

TEST(Trace, ReadRejectsNonMonotoneTimes) {
  std::stringstream ss("2.0,1,100\n1.0,1,100\n");
  EXPECT_THROW(read(ss), std::runtime_error);
}

TEST(Trace, ReadRejectsZeroSize) {
  std::stringstream ss("1.0,1,0\n");
  EXPECT_THROW(read(ss), std::runtime_error);
}

// NaN fails every relational comparison, so a bare `time < 0.0` check lets
// it through; the reader must reject non-finite timestamps explicitly.
TEST(Trace, ReadRejectsNaNTime) {
  std::stringstream ss("nan,1,100\n");
  EXPECT_THROW(read(ss), std::runtime_error);
}

TEST(Trace, ReadRejectsInfiniteTime) {
  std::stringstream ss("inf,1,100\n");
  EXPECT_THROW(read(ss), std::runtime_error);
}

TEST(Trace, ReadRejectsNegativeTime) {
  std::stringstream ss("-1.0,1,100\n");
  EXPECT_THROW(read(ss), std::runtime_error);
}

TEST(Trace, FileRoundTrip) {
  const std::vector<Record> records = {{0.25, 4, 64}, {0.75, 4, 64}};
  const std::string path = ::testing::TempDir() + "/hfq_trace_test.csv";
  write_file(path, records);
  EXPECT_EQ(read_file(path), records);
}

TEST(Trace, ReadFileMissingThrows) {
  EXPECT_THROW(read_file("/nonexistent/path/trace.csv"), std::runtime_error);
}

TEST(Trace, ReplayDeliversAtRecordedTimes) {
  const std::vector<Record> records = {{0.5, 0, 100}, {1.0, 1, 50}};
  sim::Simulator sim;
  std::vector<std::pair<double, net::FlowId>> got;
  replay(sim,
         [&](net::Packet p) {
           got.emplace_back(sim.now(), p.flow);
           return true;
         },
         records);
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0].first, 0.5);
  EXPECT_EQ(got[0].second, 0u);
  EXPECT_DOUBLE_EQ(got[1].first, 1.0);
  EXPECT_EQ(got[1].second, 1u);
}

TEST(Trace, ReplayAssignsPerFlowSequentialIds) {
  const std::vector<Record> records = {
      {0.1, 5, 10}, {0.2, 5, 10}, {0.3, 6, 10}};
  sim::Simulator sim;
  std::vector<std::uint64_t> ids;
  replay(sim,
         [&](net::Packet p) {
           ids.push_back(p.id);
           return true;
         },
         records);
  sim.run();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], (5ull << 32) | 0);
  EXPECT_EQ(ids[1], (5ull << 32) | 1);
  EXPECT_EQ(ids[2], (6ull << 32) | 0);
}

// Record a live source mix, then replay it: the scheduler must produce the
// identical departure schedule.
TEST(Trace, RecordThenReplayReproducesSchedule) {
  auto run_recorded = []() {
    sim::Simulator sim;
    core::Wf2qPlus sched(8000.0);
    sched.add_flow(0, 4000.0);
    sched.add_flow(1, 4000.0);
    sim::Link link(sim, sched, 8000.0);
    std::vector<std::pair<double, net::FlowId>> deps;
    link.set_delivery([&](const net::Packet& p, net::Time t) {
      deps.emplace_back(t, p.flow);
    });
    Recorder rec(sim);
    auto emit = rec.wrap([&link](net::Packet p) { return link.submit(p); });
    traffic::CbrSource cbr(sim, emit, 0, 125, 3000.0);
    traffic::PoissonSource poi(sim, emit, 1, 125, 3000.0, util::Rng(3));
    cbr.start(0.0, 5.0);
    poi.start(0.0, 5.0);
    sim.run();
    return std::make_pair(deps, rec.records());
  };

  const auto [live_deps, records] = run_recorded();
  ASSERT_FALSE(records.empty());

  // Replay the captured trace against a fresh identical scheduler.
  sim::Simulator sim;
  core::Wf2qPlus sched(8000.0);
  sched.add_flow(0, 4000.0);
  sched.add_flow(1, 4000.0);
  sim::Link link(sim, sched, 8000.0);
  std::vector<std::pair<double, net::FlowId>> replay_deps;
  link.set_delivery([&](const net::Packet& p, net::Time t) {
    replay_deps.emplace_back(t, p.flow);
  });
  replay(sim, [&link](net::Packet p) { return link.submit(p); }, records);
  sim.run();

  ASSERT_EQ(replay_deps.size(), live_deps.size());
  for (std::size_t i = 0; i < live_deps.size(); ++i) {
    EXPECT_NEAR(replay_deps[i].first, live_deps[i].first, 1e-9);
    EXPECT_EQ(replay_deps[i].second, live_deps[i].second);
  }
}

}  // namespace
}  // namespace hfq::trace
