// Tests for traffic sources (src/traffic), including leaky-bucket
// conformance properties and the TCP Reno substrate.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/wf2qplus.h"
#include "net/flow.h"
#include "net/scheduler.h"
#include "sched/fifo.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "traffic/cbr.h"
#include "traffic/leaky_bucket.h"
#include "traffic/onoff.h"
#include "traffic/packet_train.h"
#include "traffic/poisson.h"
#include "traffic/tcp.h"
#include "util/rng.h"

namespace hfq::traffic {
namespace {

struct Capture {
  std::vector<net::Packet> pkts;
  std::vector<net::Time> times;
};

Emit capture_into(sim::Simulator& sim, Capture& c) {
  return [&sim, &c](net::Packet p) {
    c.pkts.push_back(p);
    c.times.push_back(sim.now());
    return true;
  };
}

// ----------------------------------------------------------------- CBR

TEST(CbrSource, EmitsAtExactPeriod) {
  sim::Simulator sim;
  Capture c;
  CbrSource src(sim, capture_into(sim, c), 0, /*bytes=*/125, /*rate=*/1000.0);
  // period = 1000 bits / 1000 bps = 1 s
  src.start(2.0, /*stop=*/7.5);
  sim.run();
  ASSERT_EQ(c.times.size(), 6u);  // t = 2,3,4,5,6,7
  for (std::size_t i = 0; i < c.times.size(); ++i) {
    EXPECT_NEAR(c.times[i], 2.0 + static_cast<double>(i), 1e-9);
  }
  EXPECT_EQ(c.pkts[0].flow, 0u);
  EXPECT_EQ(c.pkts[0].size_bytes, 125u);
}

TEST(CbrSource, PacketIdsAreSequential) {
  sim::Simulator sim;
  Capture c;
  CbrSource src(sim, capture_into(sim, c), 3, 125, 1000.0);
  src.start(0.0, 3.5);
  sim.run();
  ASSERT_EQ(c.pkts.size(), 4u);
  for (std::size_t i = 0; i < c.pkts.size(); ++i) {
    EXPECT_EQ(c.pkts[i].id, (3ull << 32) | i);
  }
}

// --------------------------------------------------------------- Poisson

TEST(PoissonSource, MeanRateApproximatelyCorrect) {
  sim::Simulator sim;
  Capture c;
  PoissonSource src(sim, capture_into(sim, c), 0, 125, /*mean rate=*/10000.0,
                    util::Rng(42));
  src.start(0.0, 100.0);
  sim.run();
  // Expected: 10000 bps / 1000 bits per pkt = 10 pkt/s over 100 s = 1000.
  EXPECT_NEAR(static_cast<double>(c.pkts.size()), 1000.0, 100.0);
}

TEST(PoissonSource, DeterministicForSameSeed) {
  auto run = [] {
    sim::Simulator sim;
    Capture c;
    PoissonSource src(sim, capture_into(sim, c), 0, 125, 8000.0,
                      util::Rng(7));
    src.start(0.0, 10.0);
    sim.run();
    return c.times;
  };
  EXPECT_EQ(run(), run());
}

// ----------------------------------------------------------------- OnOff

TEST(OnOffSource, DutyCycleEmitsOnlyDuringOnPeriods) {
  sim::Simulator sim;
  Capture c;
  // peak 1000 bps, 1000-bit packets → 1/s during ON.
  OnOffSource src(sim, capture_into(sim, c), 0, 125, 1000.0);
  src.start_cycle(0.0, /*on=*/2.0, /*off=*/3.0, /*stop=*/10.0);
  sim.run();
  for (const auto t : c.times) {
    const double phase = std::fmod(t, 5.0);
    EXPECT_LT(phase, 2.0) << "emitted during OFF at t=" << t;
  }
  // Cycles beginning at 0 and 5: 2 packets each (t=0,1 and 5,6).
  EXPECT_EQ(c.times.size(), 4u);
}

TEST(OnOffSource, ScheduleDrivesExplicitIntervals) {
  sim::Simulator sim;
  Capture c;
  OnOffSource src(sim, capture_into(sim, c), 0, 125, 1000.0);
  src.start_schedule({{1.0, 3.0}, {10.0, 11.5}});
  sim.run();
  ASSERT_EQ(c.times.size(), 4u);  // 1, 2, 10, 11
  EXPECT_NEAR(c.times[0], 1.0, 1e-9);
  EXPECT_NEAR(c.times[1], 2.0, 1e-9);
  EXPECT_NEAR(c.times[2], 10.0, 1e-9);
  EXPECT_NEAR(c.times[3], 11.0, 1e-9);
}

// ----------------------------------------------------------- PacketTrain

TEST(PacketTrainSource, EmitsSpacedBursts) {
  sim::Simulator sim;
  Capture c;
  PacketTrainSource src(sim, capture_into(sim, c), 0, 125, /*burst=*/3,
                        /*spacing=*/0.1, /*period=*/2.0);
  src.start(0.0, /*stop=*/3.0);
  sim.run();
  ASSERT_EQ(c.times.size(), 6u);
  EXPECT_NEAR(c.times[0], 0.0, 1e-9);
  EXPECT_NEAR(c.times[1], 0.1, 1e-9);
  EXPECT_NEAR(c.times[2], 0.2, 1e-9);
  EXPECT_NEAR(c.times[3], 2.0, 1e-9);
  EXPECT_NEAR(c.times[4], 2.1, 1e-9);
  EXPECT_NEAR(c.times[5], 2.2, 1e-9);
}

// ----------------------------------------------------------- LeakyBucket

TEST(LeakyBucket, InitialBurstPassesUnshaped) {
  sim::Simulator sim;
  Capture c;
  LeakyBucketShaper lb(sim, capture_into(sim, c), /*sigma=*/3000.0,
                       /*rho=*/1000.0);
  sim.at(0.0, [&] {
    for (int i = 0; i < 3; ++i) {
      net::Packet p;
      p.flow = 0;
      p.size_bytes = 125;  // 1000 bits
      p.id = static_cast<std::uint64_t>(i);
      lb.offer(p);
    }
  });
  sim.run();
  ASSERT_EQ(c.times.size(), 3u);
  for (const auto t : c.times) EXPECT_NEAR(t, 0.0, 1e-9);
}

TEST(LeakyBucket, ExcessDelayedToTokenRate) {
  sim::Simulator sim;
  Capture c;
  LeakyBucketShaper lb(sim, capture_into(sim, c), 1000.0, 1000.0);
  sim.at(0.0, [&] {
    for (int i = 0; i < 4; ++i) {
      net::Packet p;
      p.size_bytes = 125;
      p.id = static_cast<std::uint64_t>(i);
      lb.offer(p);
    }
  });
  sim.run();
  ASSERT_EQ(c.times.size(), 4u);
  EXPECT_NEAR(c.times[0], 0.0, 1e-9);  // bucket starts full (1000 bits)
  EXPECT_NEAR(c.times[1], 1.0, 1e-9);
  EXPECT_NEAR(c.times[2], 2.0, 1e-9);
  EXPECT_NEAR(c.times[3], 3.0, 1e-9);
}

// Property: the released stream satisfies A(t1,t2) <= sigma + rho (t2-t1)
// (Eq. 17) for all pairs of release instants, for random offered traffic.
TEST(LeakyBucketProperty, OutputConformsToArrivalCurve) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    sim::Simulator sim;
    const double sigma = rng.uniform(2000.0, 8000.0);
    const double rho = rng.uniform(500.0, 4000.0);
    std::vector<std::pair<double, double>> releases;  // (time, bits)
    LeakyBucketShaper lb(
        sim,
        [&](net::Packet p) {
          releases.emplace_back(sim.now(), p.size_bits());
          return true;
        },
        sigma, rho);
    double t = 0.0;
    for (int i = 0; i < 200; ++i) {
      t += rng.uniform(0.0, 0.4);
      const auto bytes = static_cast<std::uint32_t>(rng.uniform_int(50, 250));
      sim.at(t, [&lb, bytes] {
        net::Packet p;
        p.size_bytes = bytes;
        lb.offer(p);
      });
    }
    sim.run();
    ASSERT_EQ(releases.size(), 200u);
    // FIFO order and conformance over every release-pair window.
    std::vector<double> cum(releases.size() + 1, 0.0);
    for (std::size_t i = 0; i < releases.size(); ++i) {
      if (i > 0) {
        EXPECT_GE(releases[i].first, releases[i - 1].first - 1e-9);
      }
      cum[i + 1] = cum[i] + releases[i].second;
    }
    for (std::size_t i = 0; i < releases.size(); ++i) {
      for (std::size_t j = i; j < releases.size(); ++j) {
        const double window_bits = cum[j + 1] - cum[i];  // includes pkt i and j
        const double dt = releases[j].first - releases[i].first;
        EXPECT_LE(window_bits, sigma + rho * dt + 1e-6)
            << "window [" << i << "," << j << "]";
      }
    }
  }
}

// ------------------------------------------------------------------- TCP

// A single TCP over an uncongested fat link ramps up and saturates.
TEST(Tcp, SaturatesAnUncontendedLink) {
  sim::Simulator sim;
  sched::Fifo fifo(/*capacity=*/64);
  sim::Link link(sim, fifo, /*rate=*/1e6);
  TcpConfig cfg;
  cfg.one_way_delay_s = 0.005;
  TcpSource tcp(
      sim, [&link](net::Packet p) { return link.submit(p); }, /*flow=*/0,
      /*bytes=*/1000, cfg);
  link.set_delivery(
      [&tcp](const net::Packet& p, net::Time) { tcp.on_packet_delivered(p); });
  tcp.start(0.0);
  sim.run_until(10.0);
  // Goodput should approach the 1 Mbps bottleneck (>= 70% within 10 s).
  const double goodput = 8.0 * static_cast<double>(tcp.bytes_acked()) / 10.0;
  EXPECT_GT(goodput, 0.7e6);
}

// Loss at the bottleneck queue triggers retransmission, and everything
// eventually gets through in order.
TEST(Tcp, RecoversFromDropTailLoss) {
  sim::Simulator sim;
  sched::Fifo fifo(/*capacity=*/8);  // tight buffer → drops
  sim::Link link(sim, fifo, 1e5);
  TcpConfig cfg;
  cfg.one_way_delay_s = 0.02;  // BDP >> buffer → forced losses
  TcpSource tcp(
      sim, [&link](net::Packet p) { return link.submit(p); }, 0, 1000, cfg);
  link.set_delivery(
      [&tcp](const net::Packet& p, net::Time) { tcp.on_packet_delivered(p); });
  tcp.start(0.0);
  sim.run_until(30.0);
  EXPECT_GT(fifo.drops(), 0u);
  EXPECT_GT(tcp.retransmits(), 0u);
  // Still makes solid progress despite losses.
  const double goodput = 8.0 * static_cast<double>(tcp.bytes_acked()) / 30.0;
  EXPECT_GT(goodput, 0.5e5);
}

// Two TCPs sharing a fair-queueing bottleneck split it per their rates.
TEST(Tcp, TwoFlowsShareFairBottleneck) {
  sim::Simulator sim;
  core::Wf2qPlus sched(1e6);
  sched.add_flow(0, 7.5e5, /*capacity_packets=*/32);
  sched.add_flow(1, 2.5e5, /*capacity_packets=*/32);
  sim::Link link(sim, sched, 1e6);
  TcpConfig cfg;
  cfg.one_way_delay_s = 0.01;
  TcpSource t0(sim, [&link](net::Packet p) { return link.submit(p); }, 0,
               1000, cfg);
  TcpSource t1(sim, [&link](net::Packet p) { return link.submit(p); }, 1,
               1000, cfg);
  link.set_delivery([&](const net::Packet& p, net::Time) {
    (p.flow == 0 ? t0 : t1).on_packet_delivered(p);
  });
  t0.start(0.0);
  t1.start(0.0);
  sim.run_until(30.0);
  const double g0 = 8.0 * static_cast<double>(t0.bytes_acked()) / 30.0;
  const double g1 = 8.0 * static_cast<double>(t1.bytes_acked()) / 30.0;
  // Both flows are greedy; the scheduler should enforce ~3:1.
  EXPECT_GT(g0 + g1, 0.8e6);  // work conserving
  EXPECT_NEAR(g0 / (g0 + g1), 0.75, 0.08);
}

TEST(Tcp, DelayedAcksStillSaturateLink) {
  sim::Simulator sim;
  sched::Fifo fifo(/*capacity=*/64);
  sim::Link link(sim, fifo, 1e6);
  TcpConfig cfg;
  cfg.one_way_delay_s = 0.005;
  cfg.ack_every = 2;  // standard delayed-ack behaviour
  TcpSource tcp(
      sim, [&link](net::Packet p) { return link.submit(p); }, 0, 1000, cfg);
  link.set_delivery(
      [&tcp](const net::Packet& p, net::Time) { tcp.on_packet_delivered(p); });
  tcp.start(0.0);
  sim.run_until(10.0);
  const double goodput = 8.0 * static_cast<double>(tcp.bytes_acked()) / 10.0;
  EXPECT_GT(goodput, 0.6e6);  // slightly slower ramp than per-packet acks
}

TEST(Tcp, DelayedAcksDoNotBreakLossRecovery) {
  sim::Simulator sim;
  sched::Fifo fifo(/*capacity=*/8);
  sim::Link link(sim, fifo, 1e5);
  TcpConfig cfg;
  cfg.one_way_delay_s = 0.02;
  cfg.ack_every = 2;
  TcpSource tcp(
      sim, [&link](net::Packet p) { return link.submit(p); }, 0, 1000, cfg);
  link.set_delivery(
      [&tcp](const net::Packet& p, net::Time) { tcp.on_packet_delivered(p); });
  tcp.start(0.0);
  sim.run_until(30.0);
  EXPECT_GT(fifo.drops(), 0u);
  const double goodput = 8.0 * static_cast<double>(tcp.bytes_acked()) / 30.0;
  EXPECT_GT(goodput, 0.4e5);
}

TEST(Tcp, SlowStartDoublesPerRtt) {
  sim::Simulator sim;
  sched::Fifo fifo;
  sim::Link link(sim, fifo, 1e9);  // effectively infinite: pure slow start
  TcpConfig cfg;
  cfg.one_way_delay_s = 0.05;  // RTT 0.1 s
  cfg.initial_ssthresh_pkts = 1e9;
  TcpSource tcp(
      sim, [&link](net::Packet p) { return link.submit(p); }, 0, 1000, cfg);
  link.set_delivery(
      [&tcp](const net::Packet& p, net::Time) { tcp.on_packet_delivered(p); });
  tcp.start(0.0);
  sim.run_until(0.45);  // ~4 RTTs
  // cwnd ≈ 2^4 = 16 after 4 RTTs of pure slow start.
  EXPECT_GE(tcp.cwnd_pkts(), 8.0);
  EXPECT_LE(tcp.cwnd_pkts(), 40.0);
}

}  // namespace
}  // namespace hfq::traffic
