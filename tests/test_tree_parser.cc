// Tests for the textual hierarchy parser (core/tree_parser).
#include <gtest/gtest.h>

#include "core/tree_parser.h"

namespace hfq::core {
namespace {

constexpr const char* kFig3 = R"(
# the Section 5.1 tree
link 45M
N-2 22.5M {
  N-1 11.11M {
    RT-1 9M    flow=0 cap=64
    BE-1 2.11M flow=1
  }
  PS-1 1.139M flow=2
}
B 22.5M flow=3
)";

TEST(TreeParser, ParsesNestedTree) {
  const Hierarchy h = parse_hierarchy(std::string(kFig3));
  EXPECT_DOUBLE_EQ(h.link_rate(), 45e6);
  EXPECT_EQ(h.size(), 7u);  // root + 6 nodes
  const auto n1 = h.index_of("N-1");
  EXPECT_FALSE(h.node(n1).leaf);
  EXPECT_DOUBLE_EQ(h.node(n1).rate_bps, 11.11e6);
  const auto rt = h.index_of("RT-1");
  EXPECT_TRUE(h.node(rt).leaf);
  EXPECT_EQ(h.node(rt).flow, 0u);
  EXPECT_EQ(h.node(rt).capacity_packets, 64u);
  EXPECT_EQ(h.node(rt).parent, static_cast<std::int32_t>(n1));
  const auto b = h.index_of("B");
  EXPECT_TRUE(h.node(b).leaf);
  EXPECT_EQ(h.node(b).parent, 0);
}

TEST(TreeParser, RateSuffixes) {
  const Hierarchy h = parse_hierarchy(
      "link 1G\na 500M flow=0\nb 250k flow=1\nc 125 flow=2\n");
  EXPECT_DOUBLE_EQ(h.link_rate(), 1e9);
  EXPECT_DOUBLE_EQ(h.node(h.index_of("a")).rate_bps, 5e8);
  EXPECT_DOUBLE_EQ(h.node(h.index_of("b")).rate_bps, 2.5e5);
  EXPECT_DOUBLE_EQ(h.node(h.index_of("c")).rate_bps, 125.0);
}

TEST(TreeParser, CommentsAndBlankLinesIgnored) {
  const Hierarchy h = parse_hierarchy(
      "# top\nlink 10M # inline\n\n# mid\nx 10M flow=0\n");
  EXPECT_EQ(h.size(), 2u);
}

TEST(TreeParser, RejectsMissingLinkHeader) {
  EXPECT_THROW(parse_hierarchy(std::string("x 10M flow=0\n")),
               std::runtime_error);
}

TEST(TreeParser, RejectsBadRate) {
  EXPECT_THROW(parse_hierarchy(std::string("link 10Q\n")), std::runtime_error);
  EXPECT_THROW(parse_hierarchy(std::string("link abc\n")), std::runtime_error);
  EXPECT_THROW(parse_hierarchy(std::string("link -5M\n")), std::runtime_error);
}

TEST(TreeParser, RejectsSessionWithChildren) {
  EXPECT_THROW(
      parse_hierarchy(std::string("link 10M\nx 5M flow=0 { y 1M flow=1 }\n")),
      std::runtime_error);
}

TEST(TreeParser, RejectsBadAttribute) {
  EXPECT_THROW(parse_hierarchy(std::string("link 10M\nx 5M flow=abc\n")),
               std::runtime_error);
}

TEST(TreeParser, RejectsUnbalancedBraces) {
  EXPECT_THROW(parse_hierarchy(std::string("link 10M\nx 5M { y 1M flow=0\n")),
               std::runtime_error);
  EXPECT_THROW(parse_hierarchy(std::string("link 10M\nx 5M flow=0\n}\n")),
               std::runtime_error);
}

TEST(TreeParser, FormatRoundTrips) {
  const Hierarchy h = parse_hierarchy(std::string(kFig3));
  const std::string text = format_hierarchy(h);
  const Hierarchy h2 = parse_hierarchy(text);
  ASSERT_EQ(h2.size(), h.size());
  for (std::uint32_t i = 0; i < h.size(); ++i) {
    EXPECT_EQ(h2.node(i).name, h.node(i).name);
    EXPECT_DOUBLE_EQ(h2.node(i).rate_bps, h.node(i).rate_bps);
    EXPECT_EQ(h2.node(i).parent, h.node(i).parent);
    EXPECT_EQ(h2.node(i).leaf, h.node(i).leaf);
    EXPECT_EQ(h2.node(i).flow, h.node(i).flow);
    EXPECT_EQ(h2.node(i).capacity_packets, h.node(i).capacity_packets);
  }
}

TEST(TreeParser, ParsedTreeBuildsWorkingScheduler) {
  const Hierarchy h = parse_hierarchy(std::string(kFig3));
  auto sched = h.build_packet<Wf2qPlusPolicy>();
  net::Packet p;
  p.flow = 0;
  p.size_bytes = 100;
  EXPECT_TRUE(sched->enqueue(p, 0.0));
  const auto out = sched->dequeue(0.0);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->flow, 0u);
}

}  // namespace
}  // namespace hfq::core
