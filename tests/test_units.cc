// Runtime tests for the unit-safety layer (src/util/units.h).
//
// The *rejection* half of the algebra is tested at compile time by the
// static_asserts in units.h itself (and re-asserted here from outside the
// header, so a regression cannot hide behind the header's own translation
// unit). These tests pin the *accepted* half: the arithmetic must be exactly
// the raw double arithmetic it replaced — bit-identical, not approximately
// equal — because the strong-type migration is required to change no
// simulation output.
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "util/units.h"

namespace hfq::units {
namespace {

// --- instants and durations -------------------------------------------------

TEST(Units, DurationArithmeticMatchesRawDoubles) {
  const Duration a{0.125};
  const Duration b{0.5};
  EXPECT_EQ((a + b).seconds(), 0.125 + 0.5);
  EXPECT_EQ((a - b).seconds(), 0.125 - 0.5);
  EXPECT_EQ((-a).seconds(), -0.125);
  EXPECT_EQ((a * 3.0).seconds(), 0.125 * 3.0);
  EXPECT_EQ((3.0 * a).seconds(), 3.0 * 0.125);
  EXPECT_EQ((a / 4.0).seconds(), 0.125 / 4.0);
  EXPECT_EQ(a / b, 0.125 / 0.5);
  Duration c = a;
  c += b;
  EXPECT_EQ(c.seconds(), 0.625);
  c -= a;
  EXPECT_EQ(c.seconds(), 0.5);
}

TEST(Units, InstantsAdvanceByDurationsOnly) {
  // Both instant kinds advance by spans; instant − instant gives the span.
  const WallTime t0{1.5};
  const WallTime t1 = t0 + Duration{0.25};
  EXPECT_EQ(t1.seconds(), 1.75);
  EXPECT_EQ((t1 - t0).seconds(), 0.25);
  EXPECT_EQ((t1 - Duration{0.75}).seconds(), 1.0);

  const VirtualTime v0{2.0};
  const VirtualTime v1 = v0 + Duration{0.5};
  EXPECT_EQ(v1.v(), 2.5);
  EXPECT_EQ((v1 - v0).seconds(), 0.5);

  WallTime t = t0;
  t += Duration{1.0};
  t -= Duration{0.5};
  EXPECT_EQ(t.seconds(), 2.0);
  VirtualTime v = v0;
  v += Duration{1.0};
  v -= Duration{0.5};
  EXPECT_EQ(v.v(), 2.5);
}

TEST(Units, InstantOrderingIsTotalWithinOneClock) {
  EXPECT_LT(WallTime{1.0}, WallTime{2.0});
  EXPECT_LE(VirtualTime{3.0}, VirtualTime{3.0});
  EXPECT_GT(VirtualTime{4.0}, VirtualTime{3.0});
  EXPECT_EQ(WallTime{}, WallTime{0.0});  // default = epoch
  EXPECT_EQ(VirtualTime{}, VirtualTime{0.0});
}

// --- traffic and rates ------------------------------------------------------

TEST(Units, BitsOverRateIsTheServiceTime) {
  // The central quantity of Eq. 27: L / r.
  const Bits len{8000.0};
  const RateBps rate{1e6};
  EXPECT_EQ((len / rate).seconds(), 8000.0 / 1e6);
  // ...and its inverses round-trip through the same doubles.
  EXPECT_EQ((len / Duration{0.008}).bps(), 8000.0 / 0.008);
  EXPECT_EQ((rate * Duration{0.008}).bits(), 1e6 * 0.008);
  EXPECT_EQ((Duration{0.008} * rate).bits(), 0.008 * 1e6);
}

TEST(Units, RateRatioIsTheGpsWeight) {
  // phi_i = r_i / r is dimensionless.
  const RateBps ri{2.5e5};
  const RateBps r{1e6};
  EXPECT_EQ(ri / r, 2.5e5 / 1e6);
  EXPECT_EQ((ri + r).bps(), 2.5e5 + 1e6);
  EXPECT_EQ((r - ri).bps(), 1e6 - 2.5e5);
  RateBps sum{};
  sum += ri;
  sum += r;
  EXPECT_EQ(sum.bps(), 2.5e5 + 1e6);
  sum -= ri;
  EXPECT_EQ(sum.bps(), 1e6);
}

TEST(Units, BitsAccumulateLikeADeficitCounter) {
  Bits deficit{};
  deficit += Bits{1500.0 * 8};
  deficit -= Bits{512.0 * 8};
  EXPECT_EQ(deficit.bits(), 1500.0 * 8 - 512.0 * 8);
  EXPECT_EQ((deficit * 2.0).bits(), deficit.bits() * 2.0);
  EXPECT_LT(Bits{100.0}, Bits{200.0});
}

// --- fixed-point ticks ------------------------------------------------------

TEST(Units, VTicksQuantizationRoundsUpNeverDown) {
  constexpr int kShift = 20;  // 2^-20 s/tick, as in core/wf2qplus_fixed.h
  // Exactly representable: no rounding at all.
  const VTicks exact = VTicks::from_seconds_ceil(1.0, kShift);
  EXPECT_EQ(exact.ticks(), std::uint64_t{1} << kShift);
  EXPECT_EQ(exact.to_seconds(kShift), 1.0);
  // Not representable: must land on the next tick up, within one tick.
  const double s = 1e-3;  // 1048.576 ticks
  const VTicks q = VTicks::from_seconds_ceil(s, kShift);
  EXPECT_EQ(q.ticks(), 1049u);
  EXPECT_GE(q.to_seconds(kShift), s);
  EXPECT_LT(q.to_seconds(kShift) - s, 1.0 / (std::uint64_t{1} << kShift));
}

TEST(Units, VTicksRoundTripIsExactOnTickMultiples) {
  constexpr int kShift = 20;
  for (const std::uint64_t t : {0ull, 1ull, 7ull, 1048576ull, 123456789ull}) {
    const VTicks v{t};
    EXPECT_EQ(VTicks::from_seconds_ceil(v.to_seconds(kShift), kShift).ticks(),
              t);
  }
}

TEST(Units, VTicksIntegerArithmeticAndOrdering) {
  const VTicks a{100};
  const VTicks b{250};
  EXPECT_EQ((a + b).ticks(), 350u);
  EXPECT_EQ((b - a).ticks(), 150u);
  VTicks c = a;
  c += b;
  EXPECT_EQ(c.ticks(), 350u);
  EXPECT_LT(a, b);
  EXPECT_EQ(VTicks{}, VTicks{0});
}

// --- tolerant comparison ----------------------------------------------------

TEST(Units, ApproxLeqAbsorbsAccumulationDustOnly) {
  EXPECT_TRUE(approx_leq(1.0, 1.0));
  EXPECT_TRUE(approx_leq(1.0 + 1e-12, 1.0));   // dust-sized overshoot: tie
  EXPECT_FALSE(approx_leq(1.0 + 1e-6, 1.0));   // real overshoot: not a tie
  EXPECT_TRUE(approx_leq(0.5, 1.0));
  EXPECT_FALSE(approx_leq(1.0, 0.5));
  // The epsilon scales with magnitude so big tags still compare sanely.
  EXPECT_TRUE(approx_leq(1e12 + 1.0, 1e12));
  EXPECT_FALSE(approx_leq(1e12 + 1e4, 1e12));
  // ...but never below the absolute floor near zero.
  EXPECT_TRUE(approx_leq(1e-10, 0.0));
}

// --- the compile-time gate, re-checked from outside the header --------------

using unit_detail::addable;
using unit_detail::comparable;
using unit_detail::dividable;
using unit_detail::subtractable;

static_assert(addable<WallTime, Duration>::value);
static_assert(dividable<Bits, RateBps>::value);
static_assert(!subtractable<WallTime, VirtualTime>::value);
static_assert(!addable<WallTime, WallTime>::value);
static_assert(!comparable<WallTime, VirtualTime>::value);
static_assert(!addable<VTicks, VirtualTime>::value);
static_assert(!dividable<RateBps, Bits>::value);
static_assert(!std::is_convertible_v<double, VirtualTime>);
static_assert(!std::is_convertible_v<VirtualTime, double>);

TEST(Units, WrappersAreZeroCost) {
  EXPECT_EQ(sizeof(WallTime), sizeof(double));
  EXPECT_EQ(sizeof(VirtualTime), sizeof(double));
  EXPECT_EQ(sizeof(Duration), sizeof(double));
  EXPECT_EQ(sizeof(Bits), sizeof(double));
  EXPECT_EQ(sizeof(RateBps), sizeof(double));
  EXPECT_EQ(sizeof(VTicks), sizeof(std::uint64_t));
}

}  // namespace
}  // namespace hfq::units
