// Unit and property tests for src/util: HandleHeap, Rational, Rng.
#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "util/heap.h"
#include "util/rational.h"
#include "util/rng.h"

namespace hfq::util {
namespace {

// ---------------------------------------------------------------- HandleHeap

TEST(HandleHeap, StartsEmpty) {
  HandleHeap<double, int> h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
}

TEST(HandleHeap, PushPopOrdersByKey) {
  HandleHeap<double, int> h;
  h.push(3.0, 30);
  h.push(1.0, 10);
  h.push(2.0, 20);
  EXPECT_EQ(h.pop(), 10);
  EXPECT_EQ(h.pop(), 20);
  EXPECT_EQ(h.pop(), 30);
  EXPECT_TRUE(h.empty());
}

TEST(HandleHeap, TiesBreakFifo) {
  HandleHeap<double, int> h;
  h.push(1.0, 1);
  h.push(1.0, 2);
  h.push(1.0, 3);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 2);
  EXPECT_EQ(h.pop(), 3);
}

TEST(HandleHeap, TopAccessors) {
  HandleHeap<double, int> h;
  const HeapHandle a = h.push(5.0, 50);
  h.push(7.0, 70);
  EXPECT_DOUBLE_EQ(h.top_key(), 5.0);
  EXPECT_EQ(h.top_value(), 50);
  EXPECT_EQ(h.top_handle(), a);
}

TEST(HandleHeap, EraseMiddleElement) {
  HandleHeap<double, int> h;
  h.push(1.0, 1);
  const HeapHandle mid = h.push(2.0, 2);
  h.push(3.0, 3);
  h.erase(mid);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 3);
}

TEST(HandleHeap, EraseTopElement) {
  HandleHeap<double, int> h;
  const HeapHandle top = h.push(1.0, 1);
  h.push(2.0, 2);
  h.erase(top);
  EXPECT_EQ(h.pop(), 2);
}

TEST(HandleHeap, UpdateKeyMovesBothDirections) {
  HandleHeap<double, int> h;
  const HeapHandle a = h.push(1.0, 1);
  const HeapHandle b = h.push(2.0, 2);
  h.push(3.0, 3);
  h.update_key(a, 10.0);  // sink
  EXPECT_EQ(h.top_value(), 2);
  h.update_key(b, 0.5);  // no-op (already top), then raise 3
  EXPECT_EQ(h.top_value(), 2);
  h.update_key(a, 0.1);  // float back to top
  EXPECT_EQ(h.top_value(), 1);
}

TEST(HandleHeap, ContainsTracksLiveness) {
  HandleHeap<double, int> h;
  const HeapHandle a = h.push(1.0, 1);
  EXPECT_TRUE(h.contains(a));
  h.erase(a);
  EXPECT_FALSE(h.contains(a));
  EXPECT_FALSE(h.contains(12345));
}

TEST(HandleHeap, HandleReuseAfterErase) {
  HandleHeap<double, int> h;
  const HeapHandle a = h.push(1.0, 1);
  h.erase(a);
  const HeapHandle b = h.push(2.0, 2);
  EXPECT_TRUE(h.contains(b));
  EXPECT_EQ(h.key_of(b), 2.0);
}

TEST(HandleHeap, ClearResets) {
  HandleHeap<double, int> h;
  h.push(1.0, 1);
  h.push(2.0, 2);
  h.clear();
  EXPECT_TRUE(h.empty());
  h.push(5.0, 5);
  EXPECT_EQ(h.pop(), 5);
}

// Property: against a reference multiset under random push/pop/erase/update.
TEST(HandleHeapProperty, RandomOpsMatchReferenceSort) {
  std::mt19937_64 rng(42);
  HandleHeap<std::uint64_t, std::size_t> h;
  struct Ref {
    std::uint64_t key;
    HeapHandle handle;
    bool live;
  };
  std::vector<Ref> refs;
  for (int iter = 0; iter < 20000; ++iter) {
    const int op = static_cast<int>(rng() % 4);
    if (op <= 1 || h.empty()) {
      const std::uint64_t key = rng() % 1000;
      const HeapHandle hd = h.push(key, refs.size());
      refs.push_back(Ref{key, hd, true});
    } else if (op == 2) {
      // pop: must return the minimum key among live refs (FIFO on ties is
      // covered by dedicated test; here compare keys only).
      std::uint64_t min_key = UINT64_MAX;
      for (const Ref& r : refs) {
        if (r.live) min_key = std::min(min_key, r.key);
      }
      const std::size_t idx = h.pop();
      EXPECT_EQ(refs[idx].key, min_key);
      refs[idx].live = false;
    } else {
      // erase or update a random live element
      std::vector<std::size_t> live;
      for (std::size_t i = 0; i < refs.size(); ++i) {
        if (refs[i].live) live.push_back(i);
      }
      const std::size_t idx = live[rng() % live.size()];
      if (rng() % 2 == 0) {
        h.erase(refs[idx].handle);
        refs[idx].live = false;
      } else {
        const std::uint64_t key = rng() % 1000;
        h.update_key(refs[idx].handle, key);
        refs[idx].key = key;
      }
    }
    std::size_t live_count = 0;
    for (const Ref& r : refs) live_count += r.live ? 1u : 0u;
    ASSERT_EQ(h.size(), live_count);
  }
}

TEST(HandleHeap, TransformKeysPreservesOrderAndHandles) {
  HandleHeap<double, int> h;
  std::vector<HeapHandle> handles;
  for (int i = 0; i < 50; ++i) {
    handles.push_back(h.push(1000.0 + 7.0 * i, i));
  }
  // Monotone rebase: subtract a common offset.
  h.transform_keys([](double k) { return k - 1000.0; });
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(h.key_of(handles[static_cast<std::size_t>(i)]),
                     7.0 * i);
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(h.pop(), i);  // still a valid min-heap
  }
}

TEST(HandleHeap, TransformKeysOnEmptyHeapIsNoop) {
  HandleHeap<double, int> h;
  h.transform_keys([](double k) { return k - 5.0; });
  EXPECT_TRUE(h.empty());
}

// ------------------------------------------------------------------ Rational

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_EQ(r, Rational(0));
  EXPECT_DOUBLE_EQ(r.to_double(), 0.0);
}

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
  const Rational neg(3, -9);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 3);
}

TEST(Rational, Arithmetic) {
  const Rational a(1, 3);
  const Rational b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
  EXPECT_EQ(-a, Rational(-1, 3));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(2, 3), Rational(1, 2));
  EXPECT_LE(Rational(1, 2), Rational(2, 4));
  EXPECT_EQ(Rational(5, 10), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(1, 1000000));
}

TEST(Rational, MinMaxHelpers) {
  const Rational a(1, 3);
  const Rational b(1, 2);
  EXPECT_EQ(min(a, b), a);
  EXPECT_EQ(max(a, b), b);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3, 4).to_string(), "3/4");
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(-7, 2).to_string(), "-7/2");
  EXPECT_EQ(Rational(0).to_string(), "0");
}

// The paper's Section 2.2 example shares: 0.75, 0.05, 0.2 are exact here.
TEST(Rational, PaperShareArithmeticIsExact) {
  const Rational a1(75, 100), a2(5, 100), b(20, 100);
  EXPECT_EQ(a1 + a2 + b, Rational(1));
  // A2's rate when only A2 and B are backlogged: 0.8 of the link.
  const Rational a_node(80, 100);
  EXPECT_EQ(a_node / (a_node + b), Rational(4, 5));
}

// Property: field axioms on random small rationals.
TEST(RationalProperty, FieldAxiomsOnRandomValues) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    auto rnd = [&rng]() {
      const std::int64_t num = static_cast<std::int64_t>(rng() % 2001) - 1000;
      const std::int64_t den = static_cast<std::int64_t>(rng() % 1000) + 1;
      return Rational(num, den);
    };
    const Rational a = rnd(), b = rnd(), c = rnd();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (!(b == Rational(0))) {
      EXPECT_EQ(a / b * b, a);
    }
  }
}

// ----------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRangeRespected) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    const std::int64_t n = r.uniform_int(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(99);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.5);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng b = a.fork();
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace hfq::util
