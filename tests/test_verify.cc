// Tests for the concurrency model checker (src/verify/): the checker must
// pass the correct protocols, refute seeded bugs with replayable
// counterexamples, and — the acceptance gate — catch 100% of single-site
// memory_order weakenings injected into serve/mpsc_ring.h.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "verify/engine.h"
#include "verify/mutate.h"
#include "verify/scenarios.h"
#include "verify/shim.h"

namespace {

using hfq::verify::Options;
using hfq::verify::Result;
using hfq::verify::Scenario;

Options small_opts(int bound, bool relaxed) {
  Options o;
  o.preemption_bound = bound;
  o.relaxed_memory = relaxed;
  o.max_steps = 20000;
  return o;
}

// --- the registered scenarios pass exhaustively ---------------------------

class ScenarioPasses : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioPasses, Exhaustive) {
  const Scenario* s = hfq::verify::find_scenario(GetParam());
  ASSERT_NE(s, nullptr);
  const Result r = hfq::verify::explore(s->exhaustive_opts, s->body);
  EXPECT_TRUE(r.ok) << r.failure.kind << ": " << r.failure.message
                    << "\nschedule: " << r.failure.schedule;
  EXPECT_GT(r.stats.executions, 1u)
      << "a concurrency scenario with a single interleaving checks nothing";
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioPasses,
                         ::testing::Values("ring", "ring-wrap", "ring-full",
                                           "epoch-gate", "shard-stop",
                                           "shard-map", "pool-cursor"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// --- seeded bugs are refuted ----------------------------------------------

// Classic unsynchronized message-passing: data is plain, flag is relaxed.
// The checker must find the schedule where the reader sees the flag but a
// stale (or racing) data cell.
void relaxed_publication_body() {
  hfq::verify::var<std::uint64_t> data{0};
  hfq::verify::atomic<std::uint64_t> flag{0};
  hfq::verify::thread writer([&] {
    data.set(42);
    flag.store(1, std::memory_order_relaxed);  // BUG: needs release
  });
  while (flag.load(std::memory_order_relaxed) == 0) {  // BUG: needs acquire
    hfq::verify::yield();
  }
  hfq::verify::check(data.get() == 42, "saw flag but not data");
  writer.join();
}

TEST(SeededBugs, RelaxedPublicationIsARace) {
  const Result r =
      hfq::verify::explore(small_opts(3, true), relaxed_publication_body);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failure.kind, "race");
  EXPECT_FALSE(r.failure.schedule.empty());
}

// Lost update: two increments via plain load+store instead of fetch_add.
void lost_update_body() {
  hfq::verify::atomic<std::uint64_t> n{0};
  auto inc = [&] {
    const std::uint64_t v = n.load(std::memory_order_relaxed);
    n.store(v + 1, std::memory_order_relaxed);
  };
  hfq::verify::thread a(inc);
  hfq::verify::thread b(inc);
  a.join();
  b.join();
  hfq::verify::check(n.load(std::memory_order_relaxed) == 2, "lost update");
}

TEST(SeededBugs, LostUpdateIsFound) {
  const Result r = hfq::verify::explore(small_opts(3, false), lost_update_body);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failure.kind, "assert");
}

// Deadlock: a consumer waits for a value no thread will ever write.
void stuck_consumer_body() {
  hfq::verify::atomic<std::uint64_t> flag{0};
  hfq::verify::thread waiter([&] {
    while (flag.load(std::memory_order_acquire) == 0) {
      hfq::verify::yield();
    }
  });
  waiter.join();
}

TEST(SeededBugs, StuckSpinnerIsADeadlock) {
  const Result r = hfq::verify::explore(small_opts(3, true),
                                        stuck_consumer_body);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failure.kind, "deadlock");
}

// --- counterexamples replay deterministically ------------------------------

TEST(Replay, ReproducesTheFailureFromTheScheduleString) {
  const Result found =
      hfq::verify::explore(small_opts(3, true), relaxed_publication_body);
  ASSERT_FALSE(found.ok);
  const Result replayed = hfq::verify::replay(
      small_opts(3, true), relaxed_publication_body, found.failure.schedule);
  ASSERT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.failure.kind, found.failure.kind);
  EXPECT_EQ(replayed.failure.schedule, found.failure.schedule);
  EXPECT_FALSE(replayed.trace.empty()) << "replay must produce a full trace";
}

TEST(Replay, PassingScheduleYieldsTrace) {
  const Scenario* s = hfq::verify::find_scenario("pool-cursor");
  ASSERT_NE(s, nullptr);
  // Schedule "always pick the first candidate" — decisions all fall back to
  // list[0] after divergence, which is legal and must complete cleanly.
  const Result r =
      hfq::verify::replay(s->exhaustive_opts, s->body, "hfqv1:");
  EXPECT_TRUE(r.ok) << r.failure.message;
  EXPECT_FALSE(r.trace.empty());
}

// --- random-schedule mode finds the same seeded bug ------------------------

TEST(RandomMode, FindsSeededRace) {
  Options o = small_opts(-1, true);
  const Result r = hfq::verify::explore_random(o, relaxed_publication_body,
                                               2000, 7);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failure.kind, "race");
}

// --- the acceptance gate: mutation self-validation -------------------------

TEST(MutationCampaign, AllRingWeakeningsCaught) {
  const hfq::verify::MutationReport rep =
      hfq::verify::run_mutation_campaign("mpsc_ring.h");
  EXPECT_TRUE(rep.baseline_ok) << rep.baseline_failure;
  // try_push: seq acquire load + seq release store; pop_burst: same pair.
  EXPECT_EQ(rep.weakenable, 4u)
      << "mpsc_ring.h ordering sites changed; update this gate deliberately";
  for (const hfq::verify::MutationOutcome& o : rep.outcomes) {
    EXPECT_TRUE(o.caught) << "missed weakening at " << o.label;
  }
  EXPECT_TRUE(rep.all_caught());
}

}  // namespace
