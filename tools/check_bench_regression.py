#!/usr/bin/env python3
"""Per-cell perf-regression guard over BENCH_*.json records.

Compares a freshly recorded benchmark against the committed baseline, cell
by cell, and fails (exit 1) if any cell's ns_per_op regressed by more than
the tolerance (default 15%). Cells present in only one record are reported
but do not fail the run (new impls / retired impls land through the
baseline commit).

Two record schemas are recognized by their cell fields:

  BENCH_datapath.json  cells match on (impl, pattern, n)
  BENCH_serve.json     cells match on (scenario, shards_total, paced, tree,
                       telemetry, shard) — `telemetry` distinguishes the
                       off/counters/monitor overhead cells the sweep's
                       unpaced 100k grid emits, so a telemetry-hot-path
                       regression fails the same guard as a scheduler one.

    tools/check_bench_regression.py BENCH_datapath.json \
        --baseline <committed BENCH_datapath.json> [--tolerance 0.15]

CI runs this right after recording; the committed baseline at the repo root
holds reference-box numbers (EXPERIMENTS.md), so a same-box re-record
inside the tolerance stays green while an algorithmic regression — the
sorted-insert blowup kind, which is 100x not 15% — fails loudly even on a
noisy shared runner.

Paced serve cells report wall-clock ns_per_op (pacing-bound, not
scheduler-bound); --skip-paced drops them so only the unpaced bench cells
gate.
"""

import argparse
import json
import sys

DATAPATH_KEY = ("impl", "pattern", "n")
SERVE_KEY = ("scenario", "shards_total", "paced", "tree", "telemetry",
             "shard")


def cell_key(cell):
    """Schema-sniffing cell identity: datapath cells carry `impl`."""
    fields = DATAPATH_KEY if "impl" in cell else SERVE_KEY
    # .get, not [] — pre-telemetry serve baselines lack the field; those
    # cells key with telemetry=None and still match a re-record that ran
    # with telemetry off IF the re-record also omits it, otherwise they
    # surface as NEW/RETIRED rather than crashing the guard.
    return tuple(cell.get(f) for f in fields)


def fmt_key(key):
    return " ".join("_" if part is None else str(part) for part in key)


def load_cells(path, skip_paced=False):
    with open(path) as f:
        record = json.load(f)
    cells = {}
    for cell in record.get("cells", []):
        if skip_paced and cell.get("paced") is True:
            continue
        key = cell_key(cell)
        if key in cells:
            raise SystemExit(f"{path}: duplicate cell {key}")
        cells[key] = cell
    if not cells:
        raise SystemExit(f"{path}: no cells")
    return cells


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("record", help="freshly recorded BENCH_*.json")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional ns/op regression per cell "
                         "(default 0.15)")
    ap.add_argument("--skip-paced", action="store_true",
                    help="ignore paced serve cells (wall-clock-bound, not "
                         "scheduler-bound)")
    args = ap.parse_args()

    new = load_cells(args.record, args.skip_paced)
    base = load_cells(args.baseline, args.skip_paced)

    failures = []
    for key in sorted(base.keys() | new.keys(), key=fmt_key):
        label = fmt_key(key)
        if key not in base:
            print(f"  NEW       {label:64s} "
                  f"{new[key]['ns_per_op']:10.1f} ns/op (no baseline)")
            continue
        if key not in new:
            print(f"  RETIRED   {label:64s} (baseline only)")
            continue
        b = base[key]["ns_per_op"]
        v = new[key]["ns_per_op"]
        ratio = v / b if b > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + args.tolerance:
            status = "REGRESSED"
            failures.append((label, b, v, ratio))
        print(f"  {status:9s} {label:64s} "
              f"{b:10.1f} -> {v:10.1f} ns/op  ({ratio:5.2f}x)")

    if failures:
        print(f"\n{len(failures)} cell(s) regressed beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for label, b, v, ratio in failures:
            print(f"  {label}: {b:.1f} -> {v:.1f} ns/op ({ratio:.2f}x)",
                  file=sys.stderr)
        return 1
    print(f"\nall matched cells within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
