#!/usr/bin/env python3
"""Per-cell perf-regression guard over BENCH_datapath.json records.

Compares a freshly recorded datapath benchmark against the committed
baseline, cell by cell — cells match on (impl, pattern, n) — and fails
(exit 1) if any cell's ns_per_op regressed by more than the tolerance
(default 15%). Cells present in only one record are reported but do not
fail the run (new impls / retired impls land through the baseline commit).

    tools/check_bench_regression.py BENCH_datapath.json \
        --baseline <committed BENCH_datapath.json> [--tolerance 0.15]

CI runs this in the datapath-bench job right after recording; the committed
baseline at the repo root holds reference-box numbers (EXPERIMENTS.md), so
a same-box re-record inside the tolerance stays green while an algorithmic
regression — the sorted-insert blowup kind, which is 100x not 15% — fails
loudly even on a noisy shared runner.
"""

import argparse
import json
import sys


def load_cells(path):
    with open(path) as f:
        record = json.load(f)
    cells = {}
    for cell in record.get("cells", []):
        key = (cell["impl"], cell["pattern"], cell["n"])
        if key in cells:
            raise SystemExit(f"{path}: duplicate cell {key}")
        cells[key] = cell
    if not cells:
        raise SystemExit(f"{path}: no cells")
    return cells


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("record", help="freshly recorded BENCH_datapath.json")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline BENCH_datapath.json")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional ns/op regression per cell "
                         "(default 0.15)")
    args = ap.parse_args()

    new = load_cells(args.record)
    base = load_cells(args.baseline)

    failures = []
    for key in sorted(base.keys() | new.keys()):
        impl, pattern, n = key
        if key not in base:
            print(f"  NEW       {impl:8s} {pattern:14s} n={n:<8d} "
                  f"{new[key]['ns_per_op']:10.1f} ns/op (no baseline)")
            continue
        if key not in new:
            print(f"  RETIRED   {impl:8s} {pattern:14s} n={n:<8d} "
                  f"(baseline only)")
            continue
        b = base[key]["ns_per_op"]
        v = new[key]["ns_per_op"]
        ratio = v / b if b > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + args.tolerance:
            status = "REGRESSED"
            failures.append((key, b, v, ratio))
        print(f"  {status:9s} {impl:8s} {pattern:14s} n={n:<8d} "
              f"{b:10.1f} -> {v:10.1f} ns/op  ({ratio:5.2f}x)")

    if failures:
        print(f"\n{len(failures)} cell(s) regressed beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for (impl, pattern, n), b, v, ratio in failures:
            print(f"  {impl}/{pattern}/n={n}: {b:.1f} -> {v:.1f} ns/op "
                  f"({ratio:.2f}x)", file=sys.stderr)
        return 1
    print(f"\nall matched cells within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
