// Differential scheduler fuzzer CLI.
//
// Generates randomized traces (see audit/fuzz.h for the shapes) and runs
// every scheduler against the fluid references and against alternative
// formulations of the same algorithm. On failure it minimizes the trace,
// prints it together with the exact replay command, and exits non-zero.
//
//   fuzz_sched_diff --seeds 500          # run seeds 1..500
//   fuzz_sched_diff --seconds 30         # run as many seeds as fit in 30 s
//   fuzz_sched_diff --seed 1234567       # replay one seed verbatim
//   fuzz_sched_diff --start-seed 1000 --seeds 500
//   fuzz_sched_diff --seeds 4000 --jobs 4   # shard the range over 4 threads
//
// With --jobs N > 1 the seed range is sharded across a worker pool (the
// runner's); workers only record which seeds fail, and every failing seed is
// then replayed single-threaded through the normal reporting path — so a
// reported failure is by construction reproducible with `--seed S` alone,
// and a parallel-only failure (nondeterminism) is flagged explicitly.
//
// CI runs this under ASan/UBSan with the audit hooks compiled in, so a run
// also shakes out memory errors and internal tag-discipline violations.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "audit/fuzz.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "runner/thread_pool.h"

namespace {

using hfq::audit::FuzzFailure;
using hfq::audit::FuzzTrace;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--start-seed S] [--seed S] "
               "[--seconds S] [--jobs N] [--no-minimize] [--trace-dump DIR]\n",
               argv0);
}

// Strict non-negative integer parse: "-5" must not wrap to 2^64-5 and
// silently fuzz forever.
std::uint64_t parse_u64(const char* flag, const char* s) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (s[0] == '-' || end == s || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s: expected a non-negative integer, got '%s'\n",
                 flag, s);
    std::exit(2);
  }
  return v;
}

double parse_seconds(const char* flag, const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || v < 0.0) {
    std::fprintf(stderr, "%s: expected a non-negative number, got '%s'\n",
                 flag, s);
    std::exit(2);
  }
  return v;
}

// Runs one seed; on failure prints a report (optionally minimized), dumps
// the flight-recorder events to `trace_dump` if set, and returns false.
bool run_seed(std::uint64_t seed, bool do_minimize, const char* argv0,
              const std::string& trace_dump) {
  const FuzzTrace trace = hfq::audit::generate_trace(seed);
  hfq::obs::FlightRecorder recorder(1 << 16);
  std::vector<FuzzFailure> failures = hfq::audit::run_checks(
      trace, trace_dump.empty() ? nullptr : &recorder);
  if (failures.empty()) return true;

  std::printf("FAIL seed %llu (%s, %zu arrivals):\n",
              static_cast<unsigned long long>(seed),
              hfq::audit::shape_name(trace.shape), trace.arrivals.size());
  for (const FuzzFailure& f : failures) {
    std::printf("  [%s] %s\n", f.check.c_str(), f.detail.c_str());
  }

  if (!trace_dump.empty() && recorder.total_recorded() > 0) {
    std::filesystem::create_directories(trace_dump);
    const std::string base = trace_dump + "/seed_" + std::to_string(seed);
    {
      std::ofstream out(base + ".csv");
      hfq::obs::write_csv(out, recorder.snapshot());
    }
    {
      std::ofstream out(base + ".json");
      hfq::obs::write_chrome_json(out, recorder.snapshot());
    }
    std::printf("flight-recorder dump: %s.csv / %s.json (%llu events)\n",
                base.c_str(), base.c_str(),
                static_cast<unsigned long long>(recorder.total_recorded()));
  }

  if (do_minimize) {
    // Shrink to a minimal arrival subsequence that still trips the *first*
    // reported check (later checks often disappear once the trace shrinks).
    const std::string target = failures.front().check;
    const FuzzTrace small =
        hfq::audit::minimize(trace, [&target](const FuzzTrace& t) {
          for (const FuzzFailure& f : hfq::audit::run_checks(t)) {
            if (f.check == target) return true;
          }
          return false;
        });
    std::printf("minimized to %zu arrivals for [%s]:\n%s",
                small.arrivals.size(), target.c_str(),
                hfq::audit::format_trace(small).c_str());
  }
  std::printf("replay: %s --seed %llu\n", argv0,
              static_cast<unsigned long long>(seed));
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 500;
  std::uint64_t start_seed = 1;
  double seconds = 0.0;    // 0 = no time budget, run exactly `seeds`
  std::uint64_t jobs = 1;  // 0 = hardware concurrency
  std::string trace_dump;  // empty = no flight-recorder dumps
  bool single = false;
  std::uint64_t single_seed = 0;
  bool do_minimize = true;

  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      seeds = parse_u64("--seeds", value());
    } else if (std::strcmp(argv[i], "--start-seed") == 0) {
      start_seed = parse_u64("--start-seed", value());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      single = true;
      single_seed = parse_u64("--seed", value());
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      seconds = parse_seconds("--seconds", value());
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = parse_u64("--jobs", value());
    } else if (std::strcmp(argv[i], "--no-minimize") == 0) {
      do_minimize = false;
    } else if (std::strcmp(argv[i], "--trace-dump") == 0) {
      trace_dump = value();
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (single) {
    if (!run_seed(single_seed, do_minimize, argv[0], trace_dump)) return 1;
    std::printf("seed %llu clean\n",
                static_cast<unsigned long long>(single_seed));
    return 0;
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t ran = 0;
  int failures = 0;
  if (jobs == 1) {
    // The single-job path is the original sequential loop, with incremental
    // failure reports; its output is the reference the parallel path's
    // replays must match.
    for (std::uint64_t s = start_seed; s < start_seed + seeds; ++s) {
      if (seconds > 0.0) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - t0;
        if (elapsed.count() > seconds) break;
      }
      if (!run_seed(s, do_minimize, argv[0], trace_dump)) ++failures;
      ++ran;
    }
  } else {
    // Parallel mode: workers only record which seeds fail (no printing from
    // worker threads), then each failing seed is replayed single-threaded
    // through the exact reporting path above. A seed that failed in the
    // pool but replays clean is itself a bug — the checks must not depend
    // on thread context — and is counted as a failure.
    std::atomic<std::uint64_t> ran_atomic{0};
    std::mutex mu;
    std::vector<std::uint64_t> failing;
    hfq::runner::ThreadPool pool(static_cast<unsigned>(jobs));
    pool.parallel_for(static_cast<std::size_t>(seeds), [&](std::size_t i) {
      if (seconds > 0.0) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - t0;
        if (elapsed.count() > seconds) return;
      }
      const std::uint64_t seed = start_seed + i;
      const FuzzTrace trace = hfq::audit::generate_trace(seed);
      if (!hfq::audit::run_checks(trace).empty()) {
        const std::lock_guard<std::mutex> lock(mu);
        failing.push_back(seed);
      }
      ran_atomic.fetch_add(1, std::memory_order_relaxed);
    });
    ran = ran_atomic.load();
    std::sort(failing.begin(), failing.end());
    for (const std::uint64_t seed : failing) {
      if (!run_seed(seed, do_minimize, argv[0], trace_dump)) {
        ++failures;
      } else {
        std::printf(
            "NONDETERMINISM: seed %llu failed under --jobs %llu but "
            "replayed clean single-threaded\n",
            static_cast<unsigned long long>(seed),
            static_cast<unsigned long long>(jobs));
        ++failures;
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  std::printf("%llu seeds, %d failing, %.1f s\n",
              static_cast<unsigned long long>(ran), failures,
              elapsed.count());
  return failures == 0 ? 0 : 1;
}
