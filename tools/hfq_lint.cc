// hfq_lint: domain-specific static checks for the HFQ codebase.
//
// clang-tidy and cppcheck catch generic C++ mistakes; this tool checks the
// *scheduling* discipline that no generic linter knows about — the rules
// that keep virtual-time arithmetic honest after the strong-type migration
// (src/util/units.h):
//
//   vtime-raw-double      A virtual-time quantity declared as a raw double.
//                         Tags, clocks, and eligibility bounds must use
//                         units::VirtualTime / WallTime / VTicks; `double`
//                         is allowed only in boundary accessors (functions
//                         returning double) and inside units.h itself.
//   tag-compare           A start/finish/tag field compared directly against
//                         a virtual-time value with </<= instead of going
//                         through sched::vt_leq (which owns the FP tolerance
//                         policy). Exact integer-domain compares (VTicks) are
//                         fine but must say so with an inline disable.
//   assert-precondition   A public registration entry point (add_flow,
//                         add_child, add_leaf, ...) whose body neither
//                         contains an HFQ_ASSERT nor delegates to a checked
//                         sibling. Unvalidated rates/ids corrupt the heaps
//                         much later, far from the cause.
//   heap-key-mutation     A write to a heap node's `.key` outside
//                         util/heap.h. Keys may only change through
//                         update_key / transform_keys, which re-sift.
//   domain-cross-assign   A wall-clock value assigned into a virtual-time
//                         variable or vice versa (e.g. `vtime_ = now`).
//                         The two domains share no origin; mixing them is
//                         the bug family the unit types exist to kill.
//
// Suppression, in order of preference:
//   1. `// hfq-lint: disable(rule-a,rule-b)` on the offending line or the
//      line directly above it — for individually justified exceptions.
//   2. A suppressions file (--supp), lines of `path-suffix:rule` or
//      `path-suffix:line:rule` — for policy-level carve-outs such as the
//      heap implementation writing its own keys.
//
// Usage:
//   hfq_lint [--root DIR] [--supp FILE] [--fix-list] [--list-rules] [PATH...]
//
// PATHs are scanned recursively for .h/.hpp/.cc/.cpp files, relative to
// --root (default: src tools). Exit status: 0 clean, 1 findings, 2 usage.
// --fix-list replaces the report with machine-readable `file:line:rule`
// lines for scripted triage.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Rule {
  const char* id;
  const char* summary;
  const char* fix;
};

const Rule kRules[] = {
    {"vtime-raw-double",
     "virtual-time quantity declared as raw double",
     "use units::VirtualTime / WallTime / VTicks from src/util/units.h"},
    {"tag-compare",
     "direct </<= on a start/finish/tag field against a virtual time",
     "call sched::vt_leq (or add an inline disable for exact integer ticks)"},
    {"assert-precondition",
     "registration entry point without HFQ_ASSERT or checked delegation",
     "validate arguments with HFQ_ASSERT or delegate to a checked overload"},
    {"heap-key-mutation",
     "heap key written outside util/heap.h",
     "use HandleHeap::update_key or transform_keys so the heap re-sifts"},
    {"domain-cross-assign",
     "wall-clock value assigned to a virtual-time variable (or vice versa)",
     "convert explicitly at the boundary; the domains share no origin"},
    {"trace-in-hot-loop",
     "direct stream/printf write inside a scheduler enqueue/dequeue body",
     "emit through the flight recorder (HFQ_TRACE_EVENT, src/obs/) — never "
     "format or flush on the per-packet path"},
    {"alloc-in-hot-path",
     "heap allocation inside a scheduler enqueue/dequeue body",
     "preallocate at registration — packets live in arena slots "
     "(src/net/packet_arena.h) and flow tables grow in add_flow; the "
     "per-packet path must be allocation-free"},
    {"sift-in-hot-loop",
     "direct eligible_/waiting_ heap operation inside a scheduler dequeue "
     "body",
     "route the dequeue path through the eligible-set engine switch "
     "(sched/calendar.h pop_min/drain_leq are O(1) finds); heap sifts in "
     "the hot loop are the baseline build's cost model, not the datapath's"},
    {"lock-in-shard-loop",
     "mutex/condition-variable use inside a shard drain/service loop body",
     "the shard loop (run_once/drain_ingress/service_link) communicates only "
     "through the MPSC ring, the atomic edit slot and padded counters "
     "(src/serve/); blocking belongs on control-plane threads, which are "
     "suppressed by policy in tools/hfq_lint.supp"},
    {"atomic-ordering",
     "atomic op defaulting to seq_cst (or an unjustified relaxed load) "
     "inside a lock-free hot body",
     "spell the memory_order explicitly — a defaulted seq_cst is either an "
     "undecided ordering or a silent full fence on the per-packet path — "
     "and justify every relaxed load with a `// verify:` comment naming the "
     "pairing or why no ordering is needed (see src/serve/mpsc_ring.h); the "
     "model checker proves the protocol (hfq_verify --exhaustive, --mutate)"},
    {"metrics-in-hot-loop",
     "string formatting, allocation, or locking inside a shard-side metric "
     "update hook",
     "the telemetry hot hooks (on_arrival/on_delivery/on_sched_drop/on_loop/"
     "observe/record_breach, src/telemetry/shard_telemetry.h) are integer "
     "bucket math and relaxed single-writer bumps only; label rendering, "
     "exposition, and anything that formats or blocks runs on the plane "
     "thread (src/telemetry/plane.cc)"},
};

struct Finding {
  std::string file;   // path relative to root, '/'-separated
  std::size_t line;   // 1-based
  std::string rule;
  std::string text;   // trimmed source line
};

struct Suppression {
  std::string path_suffix;
  std::size_t line;  // 0 = any line
  std::string rule;
};

// --- small string helpers ---------------------------------------------------

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True if `word` occurs in `s` delimited by non-identifier characters.
bool contains_word(const std::string& s, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_word(s[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// --- source model -----------------------------------------------------------

// One file, split into raw lines (for disable-comment scanning) and code
// lines with comments and string/char literals blanked out (for rule
// matching, so patterns never fire inside a literal or a comment).
struct SourceFile {
  std::string rel_path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

SourceFile load(const fs::path& abs, const std::string& rel) {
  SourceFile sf;
  sf.rel_path = rel;
  std::ifstream in(abs);
  std::string line;
  bool in_block = false;  // inside /* ... */
  while (std::getline(in, line)) {
    sf.raw.push_back(line);
    std::string code;
    code.reserve(line.size());
    for (std::size_t i = 0; i < line.size();) {
      if (in_block) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block = false;
          code += "  ";
          i += 2;
        } else {
          code += ' ';
          i += 1;
        }
      } else if (line.compare(i, 2, "//") == 0) {
        break;  // rest of line is a comment
      } else if (line.compare(i, 2, "/*") == 0) {
        in_block = true;
        code += "  ";
        i += 2;
      } else if (line[i] == '"' || line[i] == '\'') {
        const char q = line[i];
        code += q;
        i += 1;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            code += "  ";
            i += 2;
          } else if (line[i] == q) {
            code += q;
            i += 1;
            break;
          } else {
            code += ' ';
            i += 1;
          }
        }
      } else {
        code += line[i];
        i += 1;
      }
    }
    sf.code.push_back(code);
  }
  return sf;
}

// A `hfq-lint: disable(a,b)` marker covers its own line and every following
// line through the end of the next statement — the first subsequent line
// whose code contains ';', '{' or '}' (inclusive). That lets the marker sit
// in a comment above a condition that wraps across lines.
std::vector<std::vector<std::string>> compute_disables(const SourceFile& sf) {
  static const std::string kMarker = "hfq-lint: disable(";
  std::vector<std::vector<std::string>> out(sf.raw.size());
  for (std::size_t l = 0; l < sf.raw.size(); ++l) {
    std::size_t pos = sf.raw[l].find(kMarker);
    if (pos == std::string::npos) continue;
    pos += kMarker.size();
    const std::size_t close = sf.raw[l].find(')', pos);
    if (close == std::string::npos) continue;
    std::vector<std::string> rules;
    const std::string list = sf.raw[l].substr(pos, close - pos);
    std::size_t start = 0;
    while (start <= list.size()) {
      std::size_t comma = list.find(',', start);
      if (comma == std::string::npos) comma = list.size();
      const std::string r = trim(list.substr(start, comma - start));
      if (!r.empty()) rules.push_back(r);
      start = comma + 1;
    }
    for (std::size_t j = l; j < sf.raw.size(); ++j) {
      for (const std::string& r : rules) out[j].push_back(r);
      const std::string& code = sf.code[j];
      const bool statement_end =
          j > l && code.find_first_of(";{}") != std::string::npos;
      if (statement_end) break;
    }
  }
  return out;
}

bool rule_disabled(const std::vector<std::vector<std::string>>& disables,
                   std::size_t idx, const std::string& rule) {
  const std::vector<std::string>& d = disables[idx];
  return std::find(d.begin(), d.end(), rule) != d.end();
}

// --- the rules --------------------------------------------------------------

// Identifiers that belong to the virtual-time vocabulary. An accessor
// `double vtime() const` is fine (the identifier is followed by `(` — that is
// the sanctioned boundary); a declaration `double vtime_ = ...` is not.
const std::regex kRawDoubleDecl(
    R"(\bdouble\s+(vtime|v_now|vnow|smin|busy_until|ref_time)\w*\s*[;={,])");

// A tag member (or heap top_key) on a line with </<= and a virtual-time
// identifier. `>` is deliberately not matched: the max-idiom
// `f_prev > vtime_ ? f_prev : vtime_` of Eq. 28 is an exact compare by
// design and flagging it would drown the signal.
const std::regex kTagMember(R"(\.(start|finish|tag)\b|top_key\(\))");
const std::regex kLessCompare(R"([^<]<=?[^<=])");
const std::regex kVtimeIdent(R"(\b(v_now|vtime_|smin)\b|\bvnow\s*\()");

const std::regex kHeapKeyWrite(R"(\.key\s*=[^=])");

// Entry points whose bodies must validate (or delegate to one that does).
const std::regex kEntryDef(
    R"(\b(void|NodeId|FlowId|std::uint32_t|std::size_t|auto)\s+(add_flow|add_child|add_node|add_internal|add_leaf|add_class|add_session|set_demand)\s*\()");
const std::regex kCheckedCall(
    R"(\b(HFQ_ASSERT|add|add_flow|add_child|add_node|set_demand|resize_flows)\w*\s*\()");

// LHS vocabularies for cross-domain assignment.
const std::regex kVirtualLhs(R"(\b(vtime_|v_now)\s*=[^=])");
const std::regex kWallLhs(R"(\b(busy_until_|ref_time_|now_)\s*=[^=])");

// Scheduler hot-path definitions: a return type (optionally a qualified
// member definition) followed by enqueue/dequeue. Call sites like
// `sched_.enqueue(p, now)` carry no type word and never match.
const std::regex kHotPathDef(
    R"(\b(bool|void|auto|std::optional<net::Packet>|std::optional<Packet>)\s+(\w+(<[^>]*>)?::)?(enqueue|dequeue)\s*\()");
// Formatting/flushing I/O vocabulary that must never appear on the
// per-packet path — events go through the flight recorder's fixed-size ring
// (src/obs/flight_recorder.h), which exporters drain off the hot path.
const std::regex kIoWrite(
    R"(\b(std::)?(cout|cerr|clog|ofstream|ostream|printf|fprintf|puts|fputs)\b)");
// Allocation vocabulary forbidden on the per-packet path: the million-flow
// regime turns a per-packet malloc (deque node, vector growth) into the
// dominant cost, and the legacy `resize(flow + 1)` inside enqueue was a
// one-packet out-of-memory. The batched entry points are intentionally NOT
// covered — kHotPathDef requires `(` right after enqueue/dequeue, so
// `dequeue_burst(` never matches; appending to the caller's reserved output
// vector is that interface's contract.
const std::regex kAlloc(
    R"(\bnew\b|\bmake_unique\s*<|\bmake_shared\s*<|\.(push_back|emplace_back|emplace|resize)\s*\()");

// Direct heap-set operations on the canonical eligible/waiting members.
// Inside a dequeue body these are O(log N) sifts on the per-packet path —
// the calendar engine exists to replace them; the heap branch of the engine
// switch documents itself with an inline disable, and the paper-era
// baselines are suppressed by policy in tools/hfq_lint.supp.
const std::regex kSiftVocab(
    R"(\b(eligible_|waiting_)\s*\.\s*(push|pop|top_key|top_value|update_key)\s*\()");

// Shard-loop definitions (the long-lived service's per-iteration phases,
// src/serve/shard.h). The loop must stay lock-free: a mutex wait inside it
// stalls every flow hashed to the shard. Control-plane code is free to use
// the same function names and block — those files get a policy suppression.
const std::regex kShardLoopDef(
    R"(\b(bool|void|auto|std::size_t|size_t|int)\s+(\w+(<[^>]*>)?::)?(run_once|drain_ingress|service_link|shard_loop)\s*\()");
// Blocking-synchronization vocabulary forbidden inside those bodies.
const std::regex kLockVocab(
    R"(\b(std::)?(mutex|timed_mutex|recursive_mutex|shared_mutex|condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|shared_lock)\b|\.\s*(lock|try_lock|unlock|wait|wait_for|wait_until)\s*\()");

// Telemetry metric-update hook definitions (src/telemetry/): the only
// metric code the shard thread runs per packet / per loop iteration. The
// always-on budget (≤2% of the datapath, BENCH_serve.json telemetry cells)
// only holds while these bodies stay in the integer-math + relaxed-bump
// regime; one std::to_string or mutex wait per packet eats it whole.
const std::regex kMetricHookDef(
    R"(\b(bool|void|auto|int)\s+(\w+(<[^>]*>)?::)?(on_arrival|on_delivery|on_sched_drop|on_loop|observe|record_breach)\s*\()");
// String-building vocabulary forbidden inside those bodies (allocation and
// locking are matched by kAlloc / kLockVocab; I/O by kIoWrite).
const std::regex kMetricFormatVocab(
    R"(\b(std::)?(to_string|ostringstream|stringstream|snprintf|sprintf|vsnprintf|format)\b|\bstd::string\b|\.\s*append\s*\(|\+=\s*")");

// Concurrency-hot definitions for the atomic-ordering rule: the lock-free
// datapath and the handoff protocols around it (src/serve/mpsc_ring.h,
// epoch_gate.h, shard.cc, runner/thread_pool.h). Inside these bodies an
// atomic op that defaults its memory_order is either an undecided ordering
// or a silent seq_cst fence on the per-packet path, and a relaxed load is
// only safe for a documented reason — the model checker (src/verify/) is
// the proof tool, the `// verify:` comment is the citation.
const std::regex kAtomicHotDef(
    R"(\b(bool|void|auto|int|std::size_t|size_t|std::uint64_t|std::uint32_t|std::unique_ptr<[^>]*>)\s+(\w+(<[^>]*>)?::)?(enqueue|dequeue|try_push|pop_burst|run_once|drain_ingress|service_link|shard_loop|submit|submit_edits|apply_pending_edits|take|ack|wait_for|wait_for_edits|parallel_for)\s*\()");
// A complete atomic operation call on one line (argument list closed, one
// paren-nesting level allowed); flagged when its arguments never name a
// memory_order. Calls that wrap across lines always spell the order in this
// tree (the long memory_order token is *why* they wrap), so the single-line
// restriction only costs pathological false negatives, never false
// positives.
const std::regex kAtomicOpCall(
    R"(\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(([^()]|\([^()]*\))*\))");
// A relaxed load — the one order whose correctness is invisible at the use
// site; it must carry a `// verify:` justification on its own line or
// within the three raw lines above.
const std::regex kRelaxedLoad(
    R"(\.\s*load\s*\(\s*(std::)?memory_order_relaxed\b)");

void check_line_rules(const SourceFile& sf,
                      const std::vector<std::vector<std::string>>& disables,
                      std::vector<Finding>& out) {
  for (std::size_t i = 0; i < sf.code.size(); ++i) {
    const std::string& code = sf.code[i];
    if (code.empty()) continue;
    auto report = [&](const char* rule) {
      if (!rule_disabled(disables, i, rule)) {
        out.push_back(Finding{sf.rel_path, i + 1, rule, trim(sf.raw[i])});
      }
    };

    if (std::regex_search(code, kRawDoubleDecl)) report("vtime-raw-double");

    if (std::regex_search(code, kTagMember) &&
        std::regex_search(code, kLessCompare) &&
        std::regex_search(code, kVtimeIdent) &&
        code.find("vt_leq(") == std::string::npos &&
        code.find("wt_leq(") == std::string::npos) {
      report("tag-compare");
    }

    if (std::regex_search(code, kHeapKeyWrite)) report("heap-key-mutation");

    std::smatch m;
    if (std::regex_search(code, m, kVirtualLhs)) {
      const std::string rhs = code.substr(m.position(0) + m.length(0));
      if (contains_word(rhs, "now") || contains_word(rhs, "now_")) {
        report("domain-cross-assign");
      }
    }
    if (std::regex_search(code, m, kWallLhs)) {
      const std::string rhs = code.substr(m.position(0) + m.length(0));
      if (contains_word(rhs, "vtime_") || contains_word(rhs, "v_now") ||
          contains_word(rhs, "vtime")) {
        report("domain-cross-assign");
      }
    }
  }
}

// Finds function *definitions* among the entry points and checks that the
// body (up to the matching close brace) asserts or delegates.
void check_preconditions(const SourceFile& sf,
                         const std::vector<std::vector<std::string>>& disables,
                         std::vector<Finding>& out) {
  for (std::size_t i = 0; i < sf.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(sf.code[i], m, kEntryDef)) continue;
    // Walk forward to the opening brace; a `;` first means declaration only.
    int depth = 0;
    bool found_open = false;
    bool is_decl = false;
    std::size_t body_begin = 0, body_begin_col = 0;
    for (std::size_t j = i; j < sf.code.size() && !found_open && !is_decl;
         ++j) {
      const std::string& c = sf.code[j];
      for (std::size_t k = j == i
                               ? static_cast<std::size_t>(m.position(0))
                               : 0;
           k < c.size(); ++k) {
        if (c[k] == '(') ++depth;
        if (c[k] == ')') --depth;
        if (depth == 0 && c[k] == ';') {
          is_decl = true;
          break;
        }
        if (depth == 0 && c[k] == '{') {
          found_open = true;
          body_begin = j;
          body_begin_col = k + 1;
          break;
        }
      }
    }
    if (is_decl || !found_open) continue;
    // Scan the body for HFQ_ASSERT or a delegating call.
    bool ok = false;
    int braces = 1;
    std::size_t end_line = body_begin;
    for (std::size_t j = body_begin; j < sf.code.size() && braces > 0; ++j) {
      const std::string& c = sf.code[j];
      std::size_t from = j == body_begin ? body_begin_col : 0;
      std::size_t to = c.size();
      for (std::size_t k = from; k < c.size(); ++k) {
        if (c[k] == '{') ++braces;
        if (c[k] == '}') {
          --braces;
          if (braces == 0) {
            to = k;
            break;
          }
        }
      }
      const std::string body_part = c.substr(from, to - from);
      if (std::regex_search(body_part, kCheckedCall)) ok = true;
      end_line = j;
    }
    if (!ok && !rule_disabled(disables, i, "assert-precondition")) {
      out.push_back(Finding{sf.rel_path, i + 1, "assert-precondition",
                            trim(sf.raw[i])});
    }
    (void)end_line;
  }
}

// Finds scheduler enqueue/dequeue *definitions* and flags, line by line, any
// direct stream/printf write (trace-in-hot-loop) or heap-allocating call
// (alloc-in-hot-path) inside the body (same body-walking scheme as
// check_preconditions). Each offending line is reported individually so an
// inline disable can cover exactly one site.
void check_hot_loop_io(const SourceFile& sf,
                       const std::vector<std::vector<std::string>>& disables,
                       std::vector<Finding>& out) {
  for (std::size_t i = 0; i < sf.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(sf.code[i], m, kHotPathDef)) continue;
    const bool is_dequeue = m[4].str() == "dequeue";
    // Walk forward to the opening brace; a `;` first means declaration only.
    int depth = 0;
    bool found_open = false;
    bool is_decl = false;
    std::size_t body_begin = 0, body_begin_col = 0;
    for (std::size_t j = i; j < sf.code.size() && !found_open && !is_decl;
         ++j) {
      const std::string& c = sf.code[j];
      for (std::size_t k = j == i
                               ? static_cast<std::size_t>(m.position(0))
                               : 0;
           k < c.size(); ++k) {
        if (c[k] == '(') ++depth;
        if (c[k] == ')') --depth;
        if (depth == 0 && c[k] == ';') {
          is_decl = true;
          break;
        }
        if (depth == 0 && c[k] == '{') {
          found_open = true;
          body_begin = j;
          body_begin_col = k + 1;
          break;
        }
      }
    }
    if (is_decl || !found_open) continue;
    int braces = 1;
    for (std::size_t j = body_begin; j < sf.code.size() && braces > 0; ++j) {
      const std::string& c = sf.code[j];
      std::size_t from = j == body_begin ? body_begin_col : 0;
      std::size_t to = c.size();
      for (std::size_t k = from; k < c.size(); ++k) {
        if (c[k] == '{') ++braces;
        if (c[k] == '}') {
          --braces;
          if (braces == 0) {
            to = k;
            break;
          }
        }
      }
      const std::string body_part = c.substr(from, to - from);
      if (std::regex_search(body_part, kIoWrite) &&
          !rule_disabled(disables, j, "trace-in-hot-loop")) {
        out.push_back(
            Finding{sf.rel_path, j + 1, "trace-in-hot-loop", trim(sf.raw[j])});
      }
      if (std::regex_search(body_part, kAlloc) &&
          !rule_disabled(disables, j, "alloc-in-hot-path")) {
        out.push_back(
            Finding{sf.rel_path, j + 1, "alloc-in-hot-path", trim(sf.raw[j])});
      }
      if (is_dequeue && std::regex_search(body_part, kSiftVocab) &&
          !rule_disabled(disables, j, "sift-in-hot-loop")) {
        out.push_back(
            Finding{sf.rel_path, j + 1, "sift-in-hot-loop", trim(sf.raw[j])});
      }
    }
  }
}

// Finds shard-loop phase *definitions* (run_once / drain_ingress /
// service_link / shard_loop) and flags any blocking-synchronization use
// inside the body, line by line — same body-walking scheme as
// check_hot_loop_io.
void check_shard_loop(const SourceFile& sf,
                      const std::vector<std::vector<std::string>>& disables,
                      std::vector<Finding>& out) {
  for (std::size_t i = 0; i < sf.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(sf.code[i], m, kShardLoopDef)) continue;
    // Walk forward to the opening brace; a `;` first means declaration only.
    int depth = 0;
    bool found_open = false;
    bool is_decl = false;
    std::size_t body_begin = 0, body_begin_col = 0;
    for (std::size_t j = i; j < sf.code.size() && !found_open && !is_decl;
         ++j) {
      const std::string& c = sf.code[j];
      for (std::size_t k = j == i
                               ? static_cast<std::size_t>(m.position(0))
                               : 0;
           k < c.size(); ++k) {
        if (c[k] == '(') ++depth;
        if (c[k] == ')') --depth;
        if (depth == 0 && c[k] == ';') {
          is_decl = true;
          break;
        }
        if (depth == 0 && c[k] == '{') {
          found_open = true;
          body_begin = j;
          body_begin_col = k + 1;
          break;
        }
      }
    }
    if (is_decl || !found_open) continue;
    int braces = 1;
    for (std::size_t j = body_begin; j < sf.code.size() && braces > 0; ++j) {
      const std::string& c = sf.code[j];
      std::size_t from = j == body_begin ? body_begin_col : 0;
      std::size_t to = c.size();
      for (std::size_t k = from; k < c.size(); ++k) {
        if (c[k] == '{') ++braces;
        if (c[k] == '}') {
          --braces;
          if (braces == 0) {
            to = k;
            break;
          }
        }
      }
      const std::string body_part = c.substr(from, to - from);
      if (std::regex_search(body_part, kLockVocab) &&
          !rule_disabled(disables, j, "lock-in-shard-loop")) {
        out.push_back(Finding{sf.rel_path, j + 1, "lock-in-shard-loop",
                              trim(sf.raw[j])});
      }
    }
  }
}

// Finds telemetry metric-hook *definitions* (kMetricHookDef) and flags any
// string formatting, allocation, locking, or direct I/O inside the body —
// same body-walking scheme as check_hot_loop_io. The plane thread
// (src/telemetry/plane.cc) is where formatting belongs; it avoids these
// function names on purpose.
void check_metric_hooks(const SourceFile& sf,
                        const std::vector<std::vector<std::string>>& disables,
                        std::vector<Finding>& out) {
  for (std::size_t i = 0; i < sf.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(sf.code[i], m, kMetricHookDef)) continue;
    // Walk forward to the opening brace; a `;` first means declaration only.
    int depth = 0;
    bool found_open = false;
    bool is_decl = false;
    std::size_t body_begin = 0, body_begin_col = 0;
    for (std::size_t j = i; j < sf.code.size() && !found_open && !is_decl;
         ++j) {
      const std::string& c = sf.code[j];
      for (std::size_t k = j == i
                               ? static_cast<std::size_t>(m.position(0))
                               : 0;
           k < c.size(); ++k) {
        if (c[k] == '(') ++depth;
        if (c[k] == ')') --depth;
        if (depth == 0 && c[k] == ';') {
          is_decl = true;
          break;
        }
        if (depth == 0 && c[k] == '{') {
          found_open = true;
          body_begin = j;
          body_begin_col = k + 1;
          break;
        }
      }
    }
    if (is_decl || !found_open) continue;
    int braces = 1;
    for (std::size_t j = body_begin; j < sf.code.size() && braces > 0; ++j) {
      const std::string& c = sf.code[j];
      std::size_t from = j == body_begin ? body_begin_col : 0;
      std::size_t to = c.size();
      for (std::size_t k = from; k < c.size(); ++k) {
        if (c[k] == '{') ++braces;
        if (c[k] == '}') {
          --braces;
          if (braces == 0) {
            to = k;
            break;
          }
        }
      }
      const std::string body_part = c.substr(from, to - from);
      if ((std::regex_search(body_part, kMetricFormatVocab) ||
           std::regex_search(body_part, kAlloc) ||
           std::regex_search(body_part, kLockVocab) ||
           std::regex_search(body_part, kIoWrite)) &&
          !rule_disabled(disables, j, "metrics-in-hot-loop")) {
        out.push_back(Finding{sf.rel_path, j + 1, "metrics-in-hot-loop",
                              trim(sf.raw[j])});
      }
    }
  }
}

// Finds concurrency-hot *definitions* (kAtomicHotDef) and flags, line by
// line, any atomic op that defaults its memory_order and any
// memory_order_relaxed load without a `// verify:` justification nearby —
// same body-walking scheme as check_hot_loop_io. The verify-comment scan
// reads sf.raw (comments are blanked out of sf.code by design).
void check_atomic_ordering(const SourceFile& sf,
                           const std::vector<std::vector<std::string>>& disables,
                           std::vector<Finding>& out) {
  for (std::size_t i = 0; i < sf.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(sf.code[i], m, kAtomicHotDef)) continue;
    // Walk forward to the opening brace; a `;` first means declaration only.
    int depth = 0;
    bool found_open = false;
    bool is_decl = false;
    std::size_t body_begin = 0, body_begin_col = 0;
    for (std::size_t j = i; j < sf.code.size() && !found_open && !is_decl;
         ++j) {
      const std::string& c = sf.code[j];
      for (std::size_t k = j == i
                               ? static_cast<std::size_t>(m.position(0))
                               : 0;
           k < c.size(); ++k) {
        if (c[k] == '(') ++depth;
        if (c[k] == ')') --depth;
        if (depth == 0 && c[k] == ';') {
          is_decl = true;
          break;
        }
        if (depth == 0 && c[k] == '{') {
          found_open = true;
          body_begin = j;
          body_begin_col = k + 1;
          break;
        }
      }
    }
    if (is_decl || !found_open) continue;
    int braces = 1;
    for (std::size_t j = body_begin; j < sf.code.size() && braces > 0; ++j) {
      const std::string& c = sf.code[j];
      std::size_t from = j == body_begin ? body_begin_col : 0;
      std::size_t to = c.size();
      for (std::size_t k = from; k < c.size(); ++k) {
        if (c[k] == '{') ++braces;
        if (c[k] == '}') {
          --braces;
          if (braces == 0) {
            to = k;
            break;
          }
        }
      }
      const std::string body_part = c.substr(from, to - from);
      bool bad = false;
      std::string rest = body_part;
      std::smatch op;
      while (std::regex_search(rest, op, kAtomicOpCall)) {
        if (op.str(0).find("memory_order") == std::string::npos) {
          bad = true;  // complete call, order defaulted
          break;
        }
        rest = op.suffix();
      }
      if (!bad && std::regex_search(body_part, kRelaxedLoad)) {
        bool justified = false;
        for (std::size_t b = j >= 3 ? j - 3 : 0; b <= j && !justified; ++b) {
          justified = sf.raw[b].find("verify:") != std::string::npos;
        }
        bad = !justified;
      }
      if (bad && !rule_disabled(disables, j, "atomic-ordering")) {
        out.push_back(
            Finding{sf.rel_path, j + 1, "atomic-ordering", trim(sf.raw[j])});
      }
    }
  }
}

// --- suppression file -------------------------------------------------------

std::vector<Suppression> load_suppressions(const std::string& path) {
  std::vector<Suppression> supps;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "hfq_lint: cannot open suppressions file '%s'\n",
                 path.c_str());
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    // path[:line]:rule — split on the *last* one or two colons so Windows
    // drive letters or nested paths never confuse the parse.
    const std::size_t last = t.rfind(':');
    if (last == std::string::npos) {
      std::fprintf(stderr, "hfq_lint: bad suppression line '%s'\n", t.c_str());
      std::exit(2);
    }
    Suppression s;
    s.rule = t.substr(last + 1);
    std::string rest = t.substr(0, last);
    const std::size_t prev = rest.rfind(':');
    s.line = 0;
    if (prev != std::string::npos) {
      const std::string maybe_line = rest.substr(prev + 1);
      if (!maybe_line.empty() &&
          std::all_of(maybe_line.begin(), maybe_line.end(), [](char c) {
            return std::isdigit(static_cast<unsigned char>(c)) != 0;
          })) {
        s.line = static_cast<std::size_t>(std::stoul(maybe_line));
        rest = rest.substr(0, prev);
      }
    }
    s.path_suffix = rest;
    supps.push_back(s);
  }
  return supps;
}

bool suppressed(const Finding& f, const std::vector<Suppression>& supps) {
  for (const Suppression& s : supps) {
    if (s.rule != f.rule) continue;
    if (s.line != 0 && s.line != f.line) continue;
    if (ends_with(f.file, s.path_suffix)) return true;
  }
  return false;
}

// --- driver -----------------------------------------------------------------

bool known_rule(const std::string& id) {
  for (const Rule& r : kRules) {
    if (id == r.id) return true;
  }
  return false;
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--supp FILE] [--fix-list] "
               "[--list-rules] [PATH...]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string supp_path;
  bool fix_list = false;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--root") == 0) {
      root = value();
    } else if (std::strcmp(argv[i], "--supp") == 0) {
      supp_path = value();
    } else if (std::strcmp(argv[i], "--fix-list") == 0) {
      fix_list = true;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const Rule& r : kRules) {
        std::printf("%-20s %s\n%-20s   fix: %s\n", r.id, r.summary, "", r.fix);
      }
      return 0;
    } else if (argv[i][0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      targets.push_back(argv[i]);
    }
  }
  if (targets.empty()) targets = {"src", "tools"};

  std::vector<Suppression> supps;
  if (!supp_path.empty()) {
    supps = load_suppressions(supp_path);
    for (const Suppression& s : supps) {
      if (!known_rule(s.rule)) {
        std::fprintf(stderr, "hfq_lint: unknown rule '%s' in %s\n",
                     s.rule.c_str(), supp_path.c_str());
        return 2;
      }
    }
  }

  // Collect the file set, stable-sorted for deterministic reports.
  std::vector<std::pair<fs::path, std::string>> files;  // abs, rel
  const fs::path root_path(root);
  for (const std::string& t : targets) {
    const fs::path base = root_path / t;
    if (!fs::exists(base)) {
      std::fprintf(stderr, "hfq_lint: no such path: %s\n",
                   base.string().c_str());
      return 2;
    }
    auto add_file = [&](const fs::path& p) {
      const std::string ext = p.extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") {
        return;
      }
      files.emplace_back(p, fs::relative(p, root_path).generic_string());
    };
    if (fs::is_regular_file(base)) {
      add_file(base);
    } else {
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file()) add_file(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  std::vector<Finding> findings;
  for (const auto& [abs, rel] : files) {
    const SourceFile sf = load(abs, rel);
    const std::vector<std::vector<std::string>> disables =
        compute_disables(sf);
    check_line_rules(sf, disables, findings);
    check_preconditions(sf, disables, findings);
    check_hot_loop_io(sf, disables, findings);
    check_shard_loop(sf, disables, findings);
    check_metric_hooks(sf, disables, findings);
    check_atomic_ordering(sf, disables, findings);
  }

  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&](const Finding& f) {
                                  return suppressed(f, supps);
                                }),
                 findings.end());

  if (fix_list) {
    for (const Finding& f : findings) {
      std::printf("%s:%zu:%s\n", f.file.c_str(), f.line, f.rule.c_str());
    }
    return findings.empty() ? 0 : 1;
  }

  for (const Finding& f : findings) {
    const Rule* rule = nullptr;
    for (const Rule& r : kRules) {
      if (f.rule == r.id) rule = &r;
    }
    std::printf("%s:%zu: [%s] %s\n    > %s\n    fix: %s\n", f.file.c_str(),
                f.line, f.rule.c_str(), rule ? rule->summary : "",
                f.text.c_str(), rule ? rule->fix : "");
  }

  if (findings.empty()) {
    std::printf("hfq_lint: %zu files clean\n", files.size());
    return 0;
  }
  std::map<std::string, std::size_t> by_rule;
  for (const Finding& f : findings) by_rule[f.rule] += 1;
  std::printf("hfq_lint: %zu finding(s):", findings.size());
  for (const auto& [id, n] : by_rule) {
    std::printf(" %s x%zu", id.c_str(), n);
  }
  std::printf("\n");
  return 1;
}
