// Experiment campaign sweeper.
//
// Loads a campaign file (src/runner/scenario.h documents the format),
// expands the parameter grid into shards, runs them across a worker pool,
// and writes a BENCH_campaign.json perf record plus an optional long-format
// CSV. A summary table goes to stdout.
//
//   hfq_sweep --scenario scenarios/smoke.scn --jobs 4 --out BENCH_campaign.json
//   hfq_sweep --scenario f.scn --shard 17          # replay one shard alone
//   hfq_sweep --scenario f.scn --jobs 8 --verify   # prove jobs-invariance
//
// --verify re-runs the whole campaign single-threaded and requires every
// deterministic metric (everything outside "timing/") to be bit-identical;
// a mismatch or any shard error exits non-zero. CI runs this as the
// Release-mode smoke job.
//
// --serve switches to load-generator mode: each scenario runs through the
// live multi-core scheduler service (src/serve/) instead of the
// discrete-event simulation — shards, producers, ring sizes and live-edit
// batches come from the campaign's serve-* directives. The run fails
// (non-zero exit) on any conservation violation, faulted shard, or splice
// failure:
//
//   hfq_sweep --scenario scenarios/serve_soak.scn --serve
//             --serve-out stats.jsonl --bench-out BENCH_serve.json
//
// --serve-flows N replaces every tree in the campaign with a flat N-session
// tree (link 1G); --serve-duration overrides the campaign duration — both
// exist so CI sanitizer legs can shrink the soak without a second .scn file.
//
// --serve-grid replaces the campaign's single serve configuration with the
// recorded scaling grid: {1,2,4} shards x {unpaced,paced} x {100k,1M}
// sessions (live-edit batches are dropped; this measures the datapath, not
// the control plane). Every cell lands in one --bench-out JSON with
// per-cell shards_total/paced/tree fields — the committed BENCH_serve.json:
//
//   hfq_sweep --scenario scenarios/serve_bench.scn --serve --serve-grid \
//             --serve-duration 2 --bench-out BENCH_serve.json
//
// The grid also re-runs its unpaced 100k-session cells with the telemetry
// plane at "counters" and "monitor" levels (the baseline cells run "off");
// every cell carries a "telemetry" field so check_bench_regression.py can
// guard the <=2% telemetry overhead budget alongside the scaling numbers.
//
// Telemetry flags (serve mode):
//   --telemetry off|counters|monitor   override the campaign's level
//   --prom-out FILE       Prometheus exposition file (atomically replaced
//                         every plane epoch; scrape mid-run with hfq_top)
//   --breach-dir DIR      breach reports + flight-recorder captures
//   --fail-on-breach      non-zero exit if the bound monitor trips
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "obs/flight_recorder.h"
#include "runner/campaign.h"
#include "runner/export.h"
#include "serve/harness.h"

namespace {

using hfq::runner::CampaignResult;
using hfq::runner::CampaignShard;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario FILE [--jobs N] [--out FILE.json]\n"
               "          [--csv FILE.csv] [--shard K] [--verify]\n"
               "          [--trace-dir DIR]\n"
               "          [--serve] [--serve-duration S] [--serve-flows N]\n"
               "          [--serve-grid]\n"
               "          [--serve-out FILE.jsonl] [--bench-out FILE.json]\n"
               "          [--telemetry off|counters|monitor]\n"
               "          [--prom-out FILE] [--breach-dir DIR]\n"
               "          [--fail-on-breach]\n",
               argv0);
}

double metric_or(const CampaignShard& shard, const char* name, double fallback) {
  for (const auto& [n, v] : shard.metrics.flatten(false)) {
    if (n == name) return v;
  }
  return fallback;
}

void print_summary(const CampaignResult& result) {
  std::printf("campaign %s  seed %llu  %zu shards  jobs %u\n",
              result.spec.name.c_str(),
              static_cast<unsigned long long>(result.spec.seed),
              result.shards.size(), result.jobs);
  std::printf("%5s  %-12s %-10s %6s  %-8s %3s  %10s  %11s  %11s  %5s\n",
              "shard", "scheduler", "tree", "load", "traffic", "rep",
              "delivered", "mean-delay", "p99-delay", "util");
  for (const CampaignShard& shard : result.shards) {
    const auto& sc = shard.scenario;
    if (!shard.ok()) {
      std::printf("%5zu  %-12s %-10s %6.2f  %-8s %3d  ERROR: %s\n", sc.index,
                  sc.scheduler.c_str(), sc.tree_name.c_str(), sc.load,
                  sc.traffic.c_str(), sc.repeat, shard.error.c_str());
      continue;
    }
    std::printf("%5zu  %-12s %-10s %6.2f  %-8s %3d  %10.0f  %9.3fms  %9.3fms  %5.3f\n",
                sc.index, sc.scheduler.c_str(), sc.tree_name.c_str(), sc.load,
                sc.traffic.c_str(), sc.repeat,
                metric_or(shard, "packets/delivered", 0.0),
                metric_or(shard, "delay/all/mean", 0.0) * 1e3,
                metric_or(shard, "delay/p99/value", 0.0) * 1e3,
                metric_or(shard, "link/utilization", 0.0));
  }
}

// Runs the campaign grid through the live service (one scenario at a time —
// the service itself is the multi-threaded part). Returns a process exit
// code: non-zero on any conservation violation, faulted shard, splice
// failure, or scenario error.
struct ServeTelemetryOpts {
  std::string level;       // "" = keep the campaign's serve-telemetry
  std::string prom_out;    // exposition file path
  std::string breach_dir;  // breach reports + capture dumps
  bool fail_on_breach = false;
};

int run_serve_mode(hfq::runner::CampaignSpec spec, double serve_duration,
                   int serve_flows, bool serve_grid,
                   const std::string& serve_out,
                   const std::string& bench_out, const std::string& trace_dir,
                   const ServeTelemetryOpts& tele) {
  if (serve_duration > 0.0) spec.duration_s = serve_duration;
  if (!tele.level.empty()) spec.serve.telemetry = tele.level;
  if (serve_flows > 0 && !serve_grid) {
    // CI-friendly override: one flat tree with serve_flows sessions.
    spec.trees.clear();
    spec.trees.push_back(hfq::runner::CampaignSpec::Tree{
        "flat" + std::to_string(serve_flows),
        hfq::runner::synth_tree(serve_flows, 1, 1e9)});
  }

  // One campaign per grid cell; the non-grid path is a one-element grid.
  std::vector<hfq::runner::CampaignSpec> specs;
  if (serve_grid) {
    for (const int flows : {100000, 1000000}) {
      for (const std::size_t shards :
           {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        for (const bool paced : {false, true}) {
          hfq::runner::CampaignSpec cell = spec;
          cell.serve.shards = shards;
          cell.serve.paced = paced;
          cell.serve.telemetry = "off";  // datapath baseline
          cell.serve.edits.clear();  // datapath scaling, not control plane
          cell.trees.clear();
          cell.trees.push_back(hfq::runner::CampaignSpec::Tree{
              "flat" + std::to_string(flows),
              hfq::runner::synth_tree(flows, 1, 1e9)});
          // Telemetry overhead cells: the unpaced 100k-session cells (the
          // scheduler-bound ones, where per-packet overhead is visible)
          // re-run with counters and with the full bound monitor. The <=2%
          // budget is judged on these against the "off" twin.
          if (!paced && flows == 100000) {
            for (const char* level : {"off", "counters", "monitor"}) {
              hfq::runner::CampaignSpec tcell = cell;
              tcell.serve.telemetry = level;
              specs.push_back(std::move(tcell));
            }
          } else {
            specs.push_back(std::move(cell));
          }
        }
      }
    }
  } else {
    specs.push_back(std::move(spec));
  }

  std::ofstream stats_file;
  std::ostream* stats_sink = nullptr;
  if (!serve_out.empty()) {
    stats_file.open(serve_out);
    if (!stats_file) {
      std::fprintf(stderr, "error: cannot open %s\n", serve_out.c_str());
      return 1;
    }
    stats_sink = &stats_file;
  }

  std::ofstream bench;
  if (!bench_out.empty()) {
    bench.open(bench_out);
    if (!bench) {
      std::fprintf(stderr, "error: cannot open %s\n", bench_out.c_str());
      return 1;
    }
    if (serve_grid) {
      bench << "{\n  \"benchmark\": \"serve\",\n  \"grid\": true,"
               "\n  \"cells\": [\n";
    } else {
      bench << "{\n  \"benchmark\": \"serve\",\n  \"shards\": "
            << specs.front().serve.shards << ",\n  \"paced\": "
            << (specs.front().serve.paced ? "true" : "false")
            << ",\n  \"cells\": [\n";
    }
  }

  int failed = 0;
  bool first_cell = true;
  for (const auto& cell_spec : specs) {
    const auto scenarios = cell_spec.expand();
    std::printf(
        "serve mode: %zu scenario(s), %zu shard(s), %zu producer(s)%s\n",
        scenarios.size(), cell_spec.serve.shards, cell_spec.serve.producers,
        cell_spec.serve.paced ? "" : " [bench/unpaced]");
    for (const auto& sc : scenarios) {
      try {
        const hfq::serve::ServeRunResult r = hfq::serve::run_serve_scenario(
            sc, cell_spec.serve, stats_sink, trace_dir, tele.prom_out,
            tele.breach_dir);
        std::printf("%5zu  %-36s %s\n", sc.index, sc.label().c_str(),
                    r.summary().c_str());
        if (!r.conservation_ok || r.faulted_shards > 0 ||
            r.splice_failures > 0) {
          ++failed;
        }
        if (tele.fail_on_breach && r.breaches > 0) {
          std::fprintf(stderr,
                       "%5zu  %-36s BREACH: %llu guarantee violation(s)\n",
                       sc.index, sc.label().c_str(),
                       static_cast<unsigned long long>(r.breaches));
          ++failed;
        }
        if (bench.is_open()) {
          for (std::size_t s = 0; s < r.shard_mpps.size(); ++s) {
            const unsigned long long n = r.shard_delivered[s];
            // Unpaced runs meter the shard loop directly (busy_ns); that is
            // the scheduler-bound per-packet cost even when producer threads
            // time-share cores with the shard. Paced runs are load-bound by
            // design, so wall-based pps is the honest number there.
            const double busy_ns = static_cast<double>(r.shard_busy_ns[s]);
            const double ns_per_op =
                busy_ns > 0.0 && n > 0
                    ? busy_ns / static_cast<double>(n)
                    : (r.shard_mpps[s] > 0.0 ? 1e3 / r.shard_mpps[s] : 0.0);
            if (!first_cell) bench << ",\n";
            first_cell = false;
            bench << "    {\"scenario\": \"" << sc.label() << "\", ";
            if (serve_grid) {
              bench << "\"shards_total\": " << cell_spec.serve.shards
                    << ", \"paced\": "
                    << (cell_spec.serve.paced ? "true" : "false")
                    << ", \"tree\": \"" << cell_spec.trees.front().name
                    << "\", \"telemetry\": \"" << cell_spec.serve.telemetry
                    << "\", ";
            }
            bench << "\"shard\": " << s << ", \"delivered\": " << n
                  << ", \"wall_s\": " << r.wall_s << ", \"busy_s\": "
                  << busy_ns / 1e9 << ", \"ns_per_op\": " << ns_per_op
                  << ", \"packets_per_sec\": "
                  << (ns_per_op > 0.0 ? 1e9 / ns_per_op : 0.0) << "}";
          }
        }
      } catch (const std::exception& e) {
        std::printf("%5zu  %-36s ERROR: %s\n", sc.index, sc.label().c_str(),
                    e.what());
        ++failed;
      }
    }
  }
  if (bench.is_open()) {
    bench << "\n  ]\n}\n";
    std::printf("wrote %s\n", bench_out.c_str());
  }
  if (stats_sink != nullptr) std::printf("wrote %s\n", serve_out.c_str());
  if (failed != 0) {
    std::fprintf(stderr, "%d serve scenario(s) failed\n", failed);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_path;
  std::string out_json;
  std::string out_csv;
  unsigned jobs = 0;  // 0 = hardware concurrency
  std::size_t only_shard = SIZE_MAX;
  std::string trace_dir;
  bool verify = false;
  bool serve = false;
  bool serve_grid = false;
  double serve_duration = 0.0;  // 0 = campaign duration
  int serve_flows = 0;          // 0 = campaign trees
  std::string serve_out;
  std::string bench_out;
  ServeTelemetryOpts tele;

  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scenario") == 0) {
      scenario_path = value();
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_json = value();
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      out_csv = value();
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      only_shard = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--trace-dir") == 0) {
      trace_dir = value();
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--serve-duration") == 0) {
      serve_duration = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--serve-flows") == 0) {
      serve_flows = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--serve-grid") == 0) {
      serve_grid = true;
    } else if (std::strcmp(argv[i], "--serve-out") == 0) {
      serve_out = value();
    } else if (std::strcmp(argv[i], "--bench-out") == 0) {
      bench_out = value();
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      tele.level = value();
      if (tele.level != "off" && tele.level != "counters" &&
          tele.level != "monitor") {
        usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--prom-out") == 0) {
      tele.prom_out = value();
    } else if (std::strcmp(argv[i], "--breach-dir") == 0) {
      tele.breach_dir = value();
    } else if (std::strcmp(argv[i], "--fail-on-breach") == 0) {
      tele.fail_on_breach = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (scenario_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    const hfq::runner::CampaignSpec spec =
        hfq::runner::parse_campaign_file(scenario_path);
    if (!trace_dir.empty() && !hfq::obs::compiled_in()) {
      std::fprintf(stderr,
                   "warning: --trace-dir set but this binary was built "
                   "without -DHFQ_TRACE=ON; traces will be empty\n");
    }
    if (serve) {
      return run_serve_mode(spec, serve_duration, serve_flows, serve_grid,
                            serve_out, bench_out, trace_dir, tele);
    }
    const CampaignResult result =
        hfq::runner::run_campaign(spec, jobs, only_shard, trace_dir);
    print_summary(result);

    if (!out_json.empty()) {
      hfq::runner::write_campaign_json_file(out_json, result);
      std::printf("wrote %s\n", out_json.c_str());
    }
    if (!out_csv.empty()) {
      hfq::runner::write_campaign_csv_file(out_csv, result);
      std::printf("wrote %s\n", out_csv.c_str());
    }

    int failed = 0;
    for (const CampaignShard& shard : result.shards) {
      if (!shard.ok()) ++failed;
    }
    if (failed != 0) {
      std::fprintf(stderr, "%d shard(s) failed\n", failed);
      return 1;
    }

    if (verify) {
      const CampaignResult replay =
          hfq::runner::run_campaign(spec, /*jobs=*/1, only_shard);
      std::string why;
      if (!hfq::runner::campaigns_deterministically_equal(result, replay,
                                                          &why)) {
        std::fprintf(stderr, "verify FAILED: jobs=%u vs jobs=1: %s\n",
                     result.jobs, why.c_str());
        return 1;
      }
      std::printf("verify OK: %zu shards bit-identical at jobs=%u and jobs=1\n",
                  result.shards.size(), result.jobs);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
