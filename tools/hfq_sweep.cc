// Experiment campaign sweeper.
//
// Loads a campaign file (src/runner/scenario.h documents the format),
// expands the parameter grid into shards, runs them across a worker pool,
// and writes a BENCH_campaign.json perf record plus an optional long-format
// CSV. A summary table goes to stdout.
//
//   hfq_sweep --scenario scenarios/smoke.scn --jobs 4 --out BENCH_campaign.json
//   hfq_sweep --scenario f.scn --shard 17          # replay one shard alone
//   hfq_sweep --scenario f.scn --jobs 8 --verify   # prove jobs-invariance
//
// --verify re-runs the whole campaign single-threaded and requires every
// deterministic metric (everything outside "timing/") to be bit-identical;
// a mismatch or any shard error exits non-zero. CI runs this as the
// Release-mode smoke job.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "obs/flight_recorder.h"
#include "runner/campaign.h"
#include "runner/export.h"

namespace {

using hfq::runner::CampaignResult;
using hfq::runner::CampaignShard;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario FILE [--jobs N] [--out FILE.json]\n"
               "          [--csv FILE.csv] [--shard K] [--verify]\n"
               "          [--trace-dir DIR]\n",
               argv0);
}

double metric_or(const CampaignShard& shard, const char* name, double fallback) {
  for (const auto& [n, v] : shard.metrics.flatten(false)) {
    if (n == name) return v;
  }
  return fallback;
}

void print_summary(const CampaignResult& result) {
  std::printf("campaign %s  seed %llu  %zu shards  jobs %u\n",
              result.spec.name.c_str(),
              static_cast<unsigned long long>(result.spec.seed),
              result.shards.size(), result.jobs);
  std::printf("%5s  %-12s %-10s %6s  %-8s %3s  %10s  %11s  %11s  %5s\n",
              "shard", "scheduler", "tree", "load", "traffic", "rep",
              "delivered", "mean-delay", "p99-delay", "util");
  for (const CampaignShard& shard : result.shards) {
    const auto& sc = shard.scenario;
    if (!shard.ok()) {
      std::printf("%5zu  %-12s %-10s %6.2f  %-8s %3d  ERROR: %s\n", sc.index,
                  sc.scheduler.c_str(), sc.tree_name.c_str(), sc.load,
                  sc.traffic.c_str(), sc.repeat, shard.error.c_str());
      continue;
    }
    std::printf("%5zu  %-12s %-10s %6.2f  %-8s %3d  %10.0f  %9.3fms  %9.3fms  %5.3f\n",
                sc.index, sc.scheduler.c_str(), sc.tree_name.c_str(), sc.load,
                sc.traffic.c_str(), sc.repeat,
                metric_or(shard, "packets/delivered", 0.0),
                metric_or(shard, "delay/all/mean", 0.0) * 1e3,
                metric_or(shard, "delay/p99/value", 0.0) * 1e3,
                metric_or(shard, "link/utilization", 0.0));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_path;
  std::string out_json;
  std::string out_csv;
  unsigned jobs = 0;  // 0 = hardware concurrency
  std::size_t only_shard = SIZE_MAX;
  std::string trace_dir;
  bool verify = false;

  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scenario") == 0) {
      scenario_path = value();
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_json = value();
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      out_csv = value();
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      only_shard = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--trace-dir") == 0) {
      trace_dir = value();
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (scenario_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    const hfq::runner::CampaignSpec spec =
        hfq::runner::parse_campaign_file(scenario_path);
    if (!trace_dir.empty() && !hfq::obs::compiled_in()) {
      std::fprintf(stderr,
                   "warning: --trace-dir set but this binary was built "
                   "without -DHFQ_TRACE=ON; traces will be empty\n");
    }
    const CampaignResult result =
        hfq::runner::run_campaign(spec, jobs, only_shard, trace_dir);
    print_summary(result);

    if (!out_json.empty()) {
      hfq::runner::write_campaign_json_file(out_json, result);
      std::printf("wrote %s\n", out_json.c_str());
    }
    if (!out_csv.empty()) {
      hfq::runner::write_campaign_csv_file(out_csv, result);
      std::printf("wrote %s\n", out_csv.c_str());
    }

    int failed = 0;
    for (const CampaignShard& shard : result.shards) {
      if (!shard.ok()) ++failed;
    }
    if (failed != 0) {
      std::fprintf(stderr, "%d shard(s) failed\n", failed);
      return 1;
    }

    if (verify) {
      const CampaignResult replay =
          hfq::runner::run_campaign(spec, /*jobs=*/1, only_shard);
      std::string why;
      if (!hfq::runner::campaigns_deterministically_equal(result, replay,
                                                          &why)) {
        std::fprintf(stderr, "verify FAILED: jobs=%u vs jobs=1: %s\n",
                     result.jobs, why.c_str());
        return 1;
      }
      std::printf("verify OK: %zu shards bit-identical at jobs=%u and jobs=1\n",
                  result.shards.size(), result.jobs);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
