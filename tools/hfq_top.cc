// hfq_top — terminal dashboard and CI scrape check for the telemetry plane.
//
// Reads the Prometheus exposition file the service publishes (atomically,
// via rename) and renders a one-screen summary: per-shard throughput and
// backlog, merged latency quantiles, bound-monitor state, and the breach
// ledger. Three modes:
//
//   hfq_top --prom <path>                 one snapshot, pretty-printed
//   hfq_top --prom <path> --follow [-i s] redraw every interval (default 1s)
//   hfq_top --prom <path> --check         CI primitive: parse strictly, exit
//                                         non-zero on any parse error or a
//                                         nonzero hfq_breaches_total
//
// --check is what the serve-soak CI job runs mid-soak: it proves the
// exposition is well-formed AND that a conforming workload produced zero
// guarantee breaches. `--allow-breaches` relaxes the second assertion for
// fault-injection runs where breaches are the expected outcome.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/prometheus.h"

namespace {

using hfq::telemetry::LabelSet;
using hfq::telemetry::PromParseResult;
using hfq::telemetry::PromSample;

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --prom <file> [--follow] [--interval <s>] [--check]\n"
      "          [--allow-breaches] [--max-iters <n>]\n"
      "\n"
      "  --prom <file>      Prometheus exposition file written by the\n"
      "                     telemetry plane (hfq_sweep --serve --prom-out).\n"
      "  --follow           redraw until interrupted (or --max-iters).\n"
      "  --interval <s>     refresh period in --follow mode (default 1.0).\n"
      "  --max-iters <n>    stop --follow after n redraws (for scripting).\n"
      "  --check            machine mode: parse strictly, print one summary\n"
      "                     line, exit 1 on parse errors, 2 on breaches,\n"
      "                     3 when the file is missing/empty.\n"
      "  --allow-breaches   --check tolerates nonzero hfq_breaches_total.\n",
      argv0);
}

double value_or(const PromParseResult& r, const std::string& name,
                double fallback) {
  const PromSample* s = r.find(name);
  return s != nullptr ? s->value : fallback;
}

double shard_value(const PromParseResult& r, const std::string& name,
                   std::uint32_t shard) {
  const PromSample* s = r.find(name, {{"shard", std::to_string(shard)}});
  return s != nullptr ? s->value : 0.0;
}

std::size_t count_shards(const PromParseResult& r) {
  std::size_t n = 0;
  for (const PromSample& s : r.samples) {
    if (s.name != "hfq_shard_delivered_total") continue;
    for (const auto& [k, v] : s.labels) {
      if (k == "shard") {
        n = std::max(n, static_cast<std::size_t>(std::stoull(v)) + 1);
      }
    }
  }
  return n;
}

std::string quantile_row(const PromParseResult& r, const std::string& name) {
  std::ostringstream os;
  for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
    const PromSample* s = r.find(name, {{"quantile", q}});
    os << "  p" << q;
    if (s != nullptr) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "=%.6g", s->value);
      os << buf;
    } else {
      os << "=?";
    }
  }
  return os.str();
}

// One full-screen render of a parsed snapshot. Uses plain text (no cursor
// addressing) so output is pipeable; --follow prefixes a form feed.
void render(const PromParseResult& r) {
  const double seq = value_or(r, "hfq_snapshot_seq", 0.0);
  const double clock_s = value_or(r, "hfq_service_clock_seconds", 0.0);
  const double breaches = value_or(r, "hfq_breaches_total", 0.0);
  std::printf("hfq_top  snapshot=%.0f  service-clock=%.3fs  breaches=%.0f%s\n",
              seq, clock_s, breaches, breaches > 0.0 ? "  << BREACH" : "");

  const std::size_t shards = count_shards(r);
  std::printf("\n%5s %12s %12s %10s %10s %8s %7s %s\n", "shard", "delivered",
              "ingested", "backlog", "drops", "epochs", "delayBr", "state");
  for (std::uint32_t s = 0; s < shards; ++s) {
    const double drops = shard_value(r, "hfq_shard_ring_drops_total", s) +
                         shard_value(r, "hfq_shard_edit_drops_total", s) +
                         shard_value(r, "hfq_sched_dropped_packets_total", s);
    const bool faulted = shard_value(r, "hfq_shard_faulted", s) != 0.0;
    std::printf("%5u %12.0f %12.0f %10.0f %10.0f %8.0f %7.0f %s\n", s,
                shard_value(r, "hfq_shard_delivered_total", s),
                shard_value(r, "hfq_shard_ingested_total", s),
                shard_value(r, "hfq_shard_backlog_packets", s), drops,
                shard_value(r, "hfq_shard_epoch_total", s),
                shard_value(r, "hfq_delay_breaches_total", s),
                faulted ? "FAULTED" : "ok");
  }

  if (r.find("hfq_latency_seconds_count") != nullptr) {
    std::printf("\nlatency  (s, sampled 1/8):%s  n=%.0f\n",
                quantile_row(r, "hfq_latency_seconds").c_str(),
                value_or(r, "hfq_latency_seconds_count", 0.0));
  }
  if (r.find("hfq_backlog_packets_count") != nullptr) {
    std::printf("backlog  (pkts, per-loop):%s  n=%.0f\n",
                quantile_row(r, "hfq_backlog_packets").c_str(),
                value_or(r, "hfq_backlog_packets_count", 0.0));
  }

  if (r.find("hfq_monitored_flows") != nullptr) {
    std::printf(
        "\nmonitor  flows=%.0f classes=%.0f spans=%.0f evals=%.0f "
        "flow-lag=%.0f class-lag=%.0f\n",
        value_or(r, "hfq_monitored_flows", 0.0),
        value_or(r, "hfq_monitored_classes", 0.0),
        value_or(r, "hfq_lag_spans_active", 0.0),
        value_or(r, "hfq_monitor_evaluations_total", 0.0),
        value_or(r, "hfq_flow_lag_breaches_total", 0.0),
        value_or(r, "hfq_class_lag_breaches_total", 0.0));
  }
}

bool slurp(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  out = os.str();
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string prom_path;
  bool follow = false;
  bool check = false;
  bool allow_breaches = false;
  double interval_s = 1.0;
  long max_iters = -1;

  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--prom") == 0) {
      prom_path = value();
    } else if (std::strcmp(argv[i], "--follow") == 0) {
      follow = true;
    } else if (std::strcmp(argv[i], "--interval") == 0 ||
               std::strcmp(argv[i], "-i") == 0) {
      interval_s = std::atof(value());
      if (interval_s <= 0.0) interval_s = 1.0;
    } else if (std::strcmp(argv[i], "--max-iters") == 0) {
      max_iters = std::atol(value());
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--allow-breaches") == 0) {
      allow_breaches = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      usage(argv[0]);
      return 2;
    }
  }
  if (prom_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  if (check) {
    std::string text;
    if (!slurp(prom_path, text)) {
      std::fprintf(stderr, "hfq_top --check: cannot read %s\n",
                   prom_path.c_str());
      return 3;
    }
    const PromParseResult r = hfq::telemetry::parse_prometheus(text);
    const double breaches = value_or(r, "hfq_breaches_total", 0.0);
    std::printf(
        "hfq_top --check: snapshot=%.0f families=%zu samples=%zu "
        "parse-errors=%zu breaches=%.0f\n",
        value_or(r, "hfq_snapshot_seq", 0.0), r.families.size(),
        r.samples.size(), r.errors.size(), breaches);
    for (const std::string& e : r.errors) {
      std::fprintf(stderr, "  parse error: %s\n", e.c_str());
    }
    if (!r.ok()) return 1;
    if (breaches > 0.0 && !allow_breaches) return 2;
    return 0;
  }

  long iter = 0;
  do {
    std::string text;
    if (!slurp(prom_path, text)) {
      if (!follow) {
        std::fprintf(stderr, "hfq_top: cannot read %s\n", prom_path.c_str());
        return 1;
      }
      std::printf("hfq_top: waiting for %s ...\n", prom_path.c_str());
    } else {
      const PromParseResult r = hfq::telemetry::parse_prometheus(text);
      if (follow) std::printf("\f");
      render(r);
      for (const std::string& e : r.errors) {
        std::fprintf(stderr, "parse error: %s\n", e.c_str());
      }
      std::fflush(stdout);
    }
    if (!follow) break;
    ++iter;
    if (max_iters >= 0 && iter >= max_iters) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  } while (true);
  return 0;
}
