// hfq_trace — record, inspect and compare scheduler flight-recorder traces.
//
// Subcommands:
//   record  --fig2 [--sched wf2qplus|fixed|hpfq] [--csv F] [--json F]
//           Runs the paper's Figure 2 scenario (11 sessions, session 1 with
//           half the link) under a flight recorder and writes the recording.
//           With --sched hpfq the same sessions run as leaves of an
//           H-WF²Q+ tree so the Chrome JSON shows one track per node.
//   print   FILE.csv [--node N] [--flow F] [--event KIND] [--since T]
//           Pretty-prints a recording, optionally filtered.
//   export  FILE.csv --json OUT.json
//           Converts a CSV recording to Chrome trace-event JSON
//           (open in Perfetto / chrome://tracing).
//   diff    A.csv B.csv [--max N]
//           Compares two recordings event-by-event (span host-ns payloads
//           are ignored — they are wall-clock measurements). Exit 1 on any
//           divergence.
//
// Recording requires a build with -DHFQ_TRACE=ON; `record` warns and
// produces an empty trace otherwise (print/export/diff work in any build).
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/hpfq.h"
#include "core/wf2qplus.h"
#include "core/wf2qplus_fixed.h"
#include "net/packet.h"
#include "net/scheduler.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "sim/link.h"
#include "sim/simulator.h"

namespace hfq::tools {
namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  hfq_trace record --fig2 [--sched wf2qplus|fixed|hpfq]\n"
         "                   [--csv FILE] [--json FILE] [--last N]\n"
         "  hfq_trace print FILE.csv [--node N] [--flow F] [--event KIND]\n"
         "                  [--since T]\n"
         "  hfq_trace export FILE.csv --json OUT.json\n"
         "  hfq_trace diff A.csv B.csv [--max N]\n";
  return 2;
}

std::vector<obs::Event> load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return obs::read_csv(in);
}

// The Figure 2 workload (bench_fig2_service_order.cc): a unit link at 8 bps
// with 1-byte packets, session 1 at half the link rate sending 11
// back-to-back packets at t=0, ten sessions at 0.05 sending one each.
constexpr double kFig2Rate = 8.0;

void submit_fig2(sim::Simulator& sim, sim::Link& link) {
  sim.at(0.0, [&link] {
    std::uint64_t id = 0;
    for (int k = 0; k < 11; ++k) {
      net::Packet p;
      p.flow = 0;
      p.size_bytes = 1;
      p.id = id++;
      link.submit(p);
    }
    for (net::FlowId j = 1; j <= 10; ++j) {
      net::Packet p;
      p.flow = j;
      p.size_bytes = 1;
      p.id = id++;
      link.submit(p);
    }
  });
  sim.run();
}

// Runs the fig-2 scenario against `sched` with a recorder installed and
// returns the recording.
std::vector<obs::Event> record_fig2_with(net::Scheduler& sched,
                                         obs::ExportOptions* opt) {
  obs::FlightRecorder rec(1 << 16);
  obs::RecordScope scope(rec);
  sim::Simulator sim;
  sim::Link link(sim, sched, kFig2Rate);
  submit_fig2(sim, link);
  if (opt->node_names.empty()) {
    opt->node_names[obs::kFlatNode] = "server";
  }
  return rec.snapshot();
}

std::vector<obs::Event> record_fig2(const std::string& sched_name,
                                    obs::ExportOptions* opt) {
  if (sched_name == "wf2qplus") {
    core::Wf2qPlus s(kFig2Rate);
    s.add_flow(0, 4.0);
    for (net::FlowId j = 1; j <= 10; ++j) s.add_flow(j, 0.4);
    opt->process_name = "hfq fig2 wf2qplus";
    return record_fig2_with(s, opt);
  }
  if (sched_name == "fixed") {
    core::Wf2qPlusFixed s(8);
    s.add_flow(0, 4.0);
    for (net::FlowId j = 1; j <= 10; ++j) s.add_flow(j, 1.0);
    opt->process_name = "hfq fig2 wf2qplus-fixed";
    return record_fig2_with(s, opt);
  }
  if (sched_name == "hpfq") {
    // The same 11 sessions as leaves of a two-class H-WF²Q+ tree: session 1
    // alone under class A (half the link), the ten small sessions under
    // class B — exercising one Chrome track per hierarchy node.
    core::HWf2qPlus s(kFig2Rate);
    const core::NodeId a = s.add_internal(s.root(), 4.0);
    const core::NodeId b = s.add_internal(s.root(), 4.0);
    opt->node_names[s.root()] = "root";
    opt->node_names[a] = "class A";
    opt->node_names[b] = "class B";
    opt->node_names[s.add_leaf(a, 4.0, 0)] = "session 1";
    for (net::FlowId j = 1; j <= 10; ++j) {
      opt->node_names[s.add_leaf(b, 0.4, j)] =
          "session " + std::to_string(j + 1);
    }
    opt->process_name = "hfq fig2 h-wf2qplus";
    return record_fig2_with(s, opt);
  }
  throw std::runtime_error("unknown --sched '" + sched_name +
                           "' (wf2qplus|fixed|hpfq)");
}

int cmd_record(const std::vector<std::string>& args) {
  bool fig2 = false;
  std::string sched = "wf2qplus";
  std::string csv_path;
  std::string json_path;
  std::size_t last = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::runtime_error(args[i] + " needs a value");
      }
      return args[++i];
    };
    if (args[i] == "--fig2") {
      fig2 = true;
    } else if (args[i] == "--sched") {
      sched = value();
    } else if (args[i] == "--csv") {
      csv_path = value();
    } else if (args[i] == "--json") {
      json_path = value();
    } else if (args[i] == "--last") {
      last = std::stoul(value());
    } else {
      throw std::runtime_error("unknown record flag " + args[i]);
    }
  }
  if (!fig2) {
    std::cerr << "record: --fig2 is the only scenario\n";
    return 2;
  }
  if (!obs::compiled_in()) {
    std::cerr << "warning: this binary was built without -DHFQ_TRACE=ON; "
                 "the recording will be empty\n";
  }
  obs::ExportOptions opt;
  std::vector<obs::Event> events = record_fig2(sched, &opt);
  if (last != 0 && last < events.size()) {
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(last));
  }
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) throw std::runtime_error("cannot write " + csv_path);
    obs::write_csv(out, events);
    std::cout << csv_path << ": " << events.size() << " events\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) throw std::runtime_error("cannot write " + json_path);
    obs::write_chrome_json(out, events, opt);
    std::cout << json_path << ": " << events.size()
              << " events (Chrome trace-event JSON)\n";
  }
  if (csv_path.empty() && json_path.empty()) {
    std::cout << obs::format_events(events);
  }
  return 0;
}

int cmd_print(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  obs::EventFilter filter;
  const std::string& path = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::runtime_error(args[i] + " needs a value");
      }
      return args[++i];
    };
    if (args[i] == "--node") {
      filter.node = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (args[i] == "--flow") {
      filter.flow = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (args[i] == "--event") {
      obs::EventKind k{};
      if (!obs::kind_from_name(value(), &k)) {
        throw std::runtime_error("unknown event kind (try enqueue, dequeue, "
                                 "vtime_update, eligibility_flip, eligset_op, "
                                 "drop, busy_start, busy_end, span_begin, "
                                 "span_end)");
      }
      filter.kind = k;
    } else if (args[i] == "--since") {
      filter.since = std::stod(value());
    } else {
      throw std::runtime_error("unknown print flag " + args[i]);
    }
  }
  const std::vector<obs::Event> events =
      obs::filter_events(load_csv(path), filter);
  std::cout << obs::format_events(events);
  std::cerr << events.size() << " events\n";
  return 0;
}

int cmd_export(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string& path = args[0];
  std::string json_path;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      json_path = args[++i];
    } else {
      throw std::runtime_error("unknown export flag " + args[i]);
    }
  }
  if (json_path.empty()) {
    std::cerr << "export: --json OUT.json is required\n";
    return 2;
  }
  const std::vector<obs::Event> events = load_csv(path);
  std::ofstream out(json_path);
  if (!out) throw std::runtime_error("cannot write " + json_path);
  obs::write_chrome_json(out, events);
  std::cout << json_path << ": " << events.size() << " events\n";
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  std::size_t max_diffs = 32;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--max" && i + 1 < args.size()) {
      max_diffs = std::stoul(args[++i]);
    } else {
      throw std::runtime_error("unknown diff flag " + args[i]);
    }
  }
  const std::vector<obs::Event> a = load_csv(args[0]);
  const std::vector<obs::Event> b = load_csv(args[1]);
  const std::vector<obs::EventDiff> diffs = obs::diff_events(a, b, max_diffs);
  if (diffs.empty()) {
    std::cout << "identical: " << a.size() << " events\n";
    return 0;
  }
  for (const obs::EventDiff& d : diffs) {
    std::cout << "event " << d.index << " differs (" << d.field << "):\n"
              << "  < " << (d.lhs.empty() ? "(missing)" : d.lhs) << '\n'
              << "  > " << (d.rhs.empty() ? "(missing)" : d.rhs) << '\n';
  }
  std::cout << diffs.size() << (diffs.size() == max_diffs ? "+" : "")
            << " divergences\n";
  return 1;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "record") return cmd_record(args);
    if (cmd == "print") return cmd_print(args);
    if (cmd == "export") return cmd_export(args);
    if (cmd == "diff") return cmd_diff(args);
  } catch (const std::exception& ex) {
    std::cerr << "hfq_trace " << cmd << ": " << ex.what() << '\n';
    return 2;
  }
  return usage();
}

}  // namespace
}  // namespace hfq::tools

int main(int argc, char** argv) { return hfq::tools::run(argc, argv); }
