// hfq_verify — CLI for the deterministic concurrency model checker
// (src/verify/): runs the service-layer scenarios exhaustively or under
// random schedules, replays counterexample schedule strings, and drives
// the memory_order mutation self-validation campaign.
//
//   hfq_verify --list
//   hfq_verify --exhaustive [scenario|all] [--bound N] [--mem sc|relaxed]
//   hfq_verify --schedules N [scenario|all] [--seed S]
//   hfq_verify --replay '<hfqv1:...>' --scenario <name>
//   hfq_verify --mutate [file-suffix]      (default: mpsc_ring.h)
//
// Exit status: 0 = all checks passed, 1 = counterexample / missed
// mutation, 2 = usage error. On failure the schedule string is printed in
// a `--replay`-ready form (CI uploads it as an artifact).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "verify/engine.h"
#include "verify/mutate.h"
#include "verify/scenarios.h"

namespace {

using hfq::verify::Result;
using hfq::verify::Scenario;

void print_failure(const std::string& scenario, const Result& r) {
  std::printf("FAIL %s: %s — %s\n", scenario.c_str(), r.failure.kind.c_str(),
              r.failure.message.c_str());
  std::printf("  schedule: %s\n", r.failure.schedule.c_str());
  std::printf("  replay:   hfq_verify --replay '%s' --scenario %s\n",
              r.failure.schedule.c_str(), scenario.c_str());
  const std::size_t n = r.failure.trace.size();
  const std::size_t from = n > 40 ? n - 40 : 0;
  if (from > 0) std::printf("  trace (last %zu of %zu ops):\n", n - from, n);
  else if (n > 0) std::printf("  trace:\n");
  for (std::size_t i = from; i < n; ++i) {
    std::printf("    %s\n", r.failure.trace[i].c_str());
  }
}

void print_stats(const std::string& scenario, const char* mode,
                 const Result& r) {
  std::printf(
      "ok   %s (%s): %llu executions, %llu steps, %llu decisions, "
      "%llu sleep-pruned, max depth %llu\n",
      scenario.c_str(), mode,
      static_cast<unsigned long long>(r.stats.executions),
      static_cast<unsigned long long>(r.stats.steps),
      static_cast<unsigned long long>(r.stats.decisions),
      static_cast<unsigned long long>(r.stats.sleep_pruned),
      static_cast<unsigned long long>(r.stats.max_depth));
}

const char* mo_name(int mo) {
  switch (static_cast<std::memory_order>(mo)) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    default: return "seq_cst";
  }
}

int usage() {
  std::fprintf(
      stderr,
      "usage: hfq_verify [--list]\n"
      "                  [--exhaustive] [scenario|all] [--bound N]\n"
      "                  [--mem sc|relaxed] [--max-executions N]\n"
      "                  [--schedules N [--seed S]]\n"
      "                  [--replay '<hfqv1:...>' --scenario <name>]\n"
      "                  [--mutate [file-suffix]]\n");
  return 2;
}

struct Args {
  bool list = false;
  bool exhaustive = false;
  bool mutate = false;
  std::string mutate_suffix = "mpsc_ring.h";
  std::uint64_t schedules = 0;
  std::uint64_t seed = 1;
  std::string replay;
  std::string scenario;  // empty = all
  int bound = -2;        // -2 = per-scenario default
  int mem = -1;          // -1 default, 0 sc, 1 relaxed
  std::uint64_t max_executions = 0;
  bool max_executions_set = false;
};

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hfq_verify: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list") {
      a.list = true;
    } else if (arg == "--exhaustive") {
      a.exhaustive = true;
    } else if (arg == "--mutate") {
      a.mutate = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') a.mutate_suffix = argv[++i];
    } else if (arg == "--schedules") {
      const char* v = next("--schedules");
      if (v == nullptr) return false;
      a.schedules = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--replay") {
      const char* v = next("--replay");
      if (v == nullptr) return false;
      a.replay = v;
    } else if (arg == "--scenario") {
      const char* v = next("--scenario");
      if (v == nullptr) return false;
      a.scenario = v;
    } else if (arg == "--bound") {
      const char* v = next("--bound");
      if (v == nullptr) return false;
      a.bound = std::atoi(v);
    } else if (arg == "--max-executions") {
      const char* v = next("--max-executions");
      if (v == nullptr) return false;
      a.max_executions = std::strtoull(v, nullptr, 10);
      a.max_executions_set = true;
    } else if (arg == "--mem") {
      const char* v = next("--mem");
      if (v == nullptr) return false;
      if (std::strcmp(v, "sc") == 0) {
        a.mem = 0;
      } else if (std::strcmp(v, "relaxed") == 0) {
        a.mem = 1;
      } else {
        std::fprintf(stderr, "hfq_verify: --mem wants sc|relaxed\n");
        return false;
      }
    } else if (arg == "all" || hfq::verify::find_scenario(arg) != nullptr) {
      a.scenario = arg == "all" ? "" : arg;
    } else {
      std::fprintf(stderr, "hfq_verify: unknown argument '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

hfq::verify::Options tuned(const Scenario& s, const Args& a) {
  hfq::verify::Options o = s.exhaustive_opts;
  if (a.bound != -2) o.preemption_bound = a.bound;
  if (a.mem == 0) o.relaxed_memory = false;
  if (a.mem == 1) o.relaxed_memory = true;
  if (a.max_executions_set) o.max_executions = a.max_executions;
  return o;
}

std::vector<const Scenario*> selected(const Args& a) {
  std::vector<const Scenario*> out;
  if (a.scenario.empty()) {
    for (const Scenario& s : hfq::verify::all_scenarios()) out.push_back(&s);
  } else {
    out.push_back(hfq::verify::find_scenario(a.scenario));
  }
  return out;
}

int run_mutate(const Args& a) {
  std::printf("mutation campaign: %s (detectors: ring-wrap, ring)\n",
              a.mutate_suffix.c_str());
  const hfq::verify::MutationReport rep =
      hfq::verify::run_mutation_campaign(a.mutate_suffix);
  if (!rep.baseline_ok) {
    std::printf("FAIL baseline (unmutated code) did not pass: %s\n",
                rep.baseline_failure.c_str());
    return 1;
  }
  for (const hfq::verify::MutationOutcome& o : rep.outcomes) {
    if (o.caught) {
      std::printf(
          "caught  %-28s %s -> %s  by %s (%s) after %llu executions\n",
          o.label.c_str(), mo_name(o.from_mo), mo_name(o.to_mo),
          o.caught_by.c_str(), o.failure_kind.c_str(),
          static_cast<unsigned long long>(o.executions));
    } else {
      std::printf("MISSED  %-28s %s -> %s  (%llu executions, no failure)\n",
                  o.label.c_str(), mo_name(o.from_mo), mo_name(o.to_mo),
                  static_cast<unsigned long long>(o.executions));
    }
  }
  std::printf("mutation score: %llu/%llu weakenings refuted\n",
              static_cast<unsigned long long>(rep.caught),
              static_cast<unsigned long long>(rep.weakenable));
  if (rep.weakenable == 0) {
    std::printf("FAIL no weakenable sites found for '%s' — wrong suffix?\n",
                a.mutate_suffix.c_str());
    return 1;
  }
  return rep.all_caught() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) return usage();

  if (a.list) {
    for (const Scenario& s : hfq::verify::all_scenarios()) {
      std::printf("%-12s bound=%d mem=%s  %s\n", s.name.c_str(),
                  s.exhaustive_opts.preemption_bound,
                  s.exhaustive_opts.relaxed_memory ? "relaxed" : "sc",
                  s.description.c_str());
    }
    return 0;
  }

  if (a.mutate) return run_mutate(a);

  if (!a.replay.empty()) {
    const Scenario* s = hfq::verify::find_scenario(a.scenario);
    if (s == nullptr) {
      std::fprintf(stderr, "hfq_verify: --replay needs --scenario <name>\n");
      return usage();
    }
    const Result r =
        hfq::verify::replay(tuned(*s, a), s->body, a.replay);
    for (const std::string& line : r.trace) std::printf("  %s\n", line.c_str());
    if (!r.ok) {
      std::printf("replayed failure: %s — %s\n", r.failure.kind.c_str(),
                  r.failure.message.c_str());
      return 1;
    }
    std::printf("replay completed without failure (stale schedule or fixed "
                "bug)\n");
    return 0;
  }

  std::vector<const Scenario*> scen = selected(a);
  for (const Scenario* s : scen) {
    if (s == nullptr) {
      std::fprintf(stderr, "hfq_verify: unknown scenario '%s'\n",
                   a.scenario.c_str());
      return usage();
    }
  }

  int rc = 0;
  if (a.schedules > 0) {
    for (const Scenario* s : scen) {
      hfq::verify::Options o = tuned(*s, a);
      // Random mode explores bigger interleaving spaces: drop the DFS
      // preemption bound unless the user pinned one.
      if (a.bound == -2) o.preemption_bound = -1;
      const Result r =
          hfq::verify::explore_random(o, s->body, a.schedules, a.seed);
      if (r.ok) {
        print_stats(s->name, "random", r);
      } else {
        print_failure(s->name, r);
        rc = 1;
      }
    }
    return rc;
  }

  // Default (and --exhaustive): full DFS per scenario.
  for (const Scenario* s : scen) {
    const Result r = hfq::verify::explore(tuned(*s, a), s->body);
    if (r.ok) {
      print_stats(s->name, "exhaustive", r);
    } else {
      print_failure(s->name, r);
      rc = 1;
    }
  }
  return rc;
}
